"""Unit tests for metapaths and metapath-constrained path counting."""

import pytest

from repro.graph.builder import GraphBuilder
from repro.walk.metapath import (
    Metapath,
    ScoredMetapath,
    count_matching_paths,
    node_has_type,
    normalize_probabilities,
    primary_type,
)


@pytest.fixture()
def graph():
    return (
        GraphBuilder()
        .typed("pitt", "actor")
        .typed("clooney", "actor")
        .typed("damon", "actor")
        .typed("spielberg", "director")
        .fact("pitt", "actedIn", "oceans")
        .fact("clooney", "actedIn", "oceans")
        .fact("damon", "actedIn", "oceans")
        .fact("damon", "actedIn", "ryan")
        .fact("spielberg", "directed", "ryan")
        .build()
    )


class TestMetapath:
    def test_construction(self):
        mp = Metapath(("a", "b"))
        assert mp.length == 2
        assert mp.end_type is None

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Metapath(())

    def test_bad_labels_rejected(self):
        with pytest.raises(ValueError):
            Metapath(("a", ""))

    def test_reversed_inverts_and_flips(self):
        mp = Metapath(("actedIn", "directed_inv"), end_type="director")
        rev = mp.reversed()
        assert rev.labels == ("directed", "actedIn_inv")
        assert rev.end_type is None

    def test_reversed_is_involution_on_labels(self):
        mp = Metapath(("a", "b_inv", "c"))
        assert mp.reversed().reversed().labels == mp.labels

    def test_str(self):
        assert str(Metapath(("a", "b"))) == "a -> b"
        assert str(Metapath(("a",), end_type="actor")) == "a [actor]"

    def test_hashable(self):
        assert Metapath(("a",)) == Metapath(("a",))
        assert Metapath(("a",)) != Metapath(("a",), end_type="t")


class TestTypeHelpers:
    def test_primary_type_lexicographic(self):
        graph = GraphBuilder().typed("x", "zebra").typed("x", "antelope").build()
        assert primary_type(graph, graph.node_id("x")) == "antelope"

    def test_primary_type_untyped(self, graph):
        assert primary_type(graph, graph.node_id("oceans")) is None

    def test_node_has_type(self, graph):
        pitt = graph.node_id("pitt")
        assert node_has_type(graph, pitt, "actor")
        assert not node_has_type(graph, pitt, "director")


class TestCountMatchingPaths:
    def test_single_hop(self, graph):
        counts = count_matching_paths(
            graph, graph.node_id("pitt"), Metapath(("actedIn",))
        )
        assert counts == {graph.node_id("oceans"): 1}

    def test_co_actor_pattern(self, graph):
        counts = count_matching_paths(
            graph, graph.node_id("pitt"), Metapath(("actedIn", "actedIn_inv"))
        )
        names = {graph.node_name(n): c for n, c in counts.items()}
        # includes pitt himself (a path back), clooney and damon
        assert names == {"pitt": 1, "clooney": 1, "damon": 1}

    def test_path_multiplicity(self, graph):
        graph.add_edge("pitt", "actedIn", "ryan")
        counts = count_matching_paths(
            graph, graph.node_id("pitt"), Metapath(("actedIn", "actedIn_inv"))
        )
        # damon is reachable via oceans AND ryan: two paths.
        assert counts[graph.node_id("damon")] == 2

    def test_end_type_filter(self, graph):
        no_filter = count_matching_paths(
            graph, graph.node_id("damon"), Metapath(("actedIn", "actedIn_inv"))
        )
        actor_only = count_matching_paths(
            graph,
            graph.node_id("damon"),
            Metapath(("actedIn", "actedIn_inv"), end_type="actor"),
        )
        assert set(actor_only) <= set(no_filter)
        assert all(node_has_type(graph, n, "actor") for n in actor_only)

    def test_dead_first_label(self, graph):
        counts = count_matching_paths(
            graph, graph.node_id("pitt"), Metapath(("directed",))
        )
        assert counts == {}

    def test_unknown_label(self, graph):
        assert count_matching_paths(graph, 0, Metapath(("nope",))) == {}


class TestScoredMetapath:
    def test_normalize_probabilities(self):
        paths = [
            ScoredMetapath(Metapath(("a",)), 3),
            ScoredMetapath(Metapath(("b",)), 1),
        ]
        normalize_probabilities(paths)
        assert paths[0].probability == pytest.approx(0.75)
        assert paths[1].probability == pytest.approx(0.25)

    def test_normalize_zero_total(self):
        paths = [ScoredMetapath(Metapath(("a",)), 0)]
        normalize_probabilities(paths)
        assert paths[0].probability == 0.0

    def test_accessors(self):
        sp = ScoredMetapath(Metapath(("a", "b"), end_type="t"), 5)
        assert sp.labels == ("a", "b")
        assert sp.length == 2
