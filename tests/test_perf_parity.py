"""Exact-parity tests between the batch hot paths and the reference paths.

The perf substrate (compiled snapshot, single-sweep distribution builder,
multi-column PPR, argpartition top-k) must be *indistinguishable* from the
per-label / per-node reference implementations: same supports, same
arrays, same ordering, same floats within 1e-12. Randomized graphs via
hypothesis pin this down beyond the handcrafted cases.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.distributions import build_all_distributions, build_distributions
from repro.core.findnc import FindNC
from repro.graph.matrix import personalization_vector, transition_matrix
from repro.graph.model import KnowledgeGraph
from repro.walk.pagerank import (
    PersonalizedPageRank,
    power_iteration,
    power_iteration_batch,
)

people = [f"p{i}" for i in range(8)]
values = [f"v{i}" for i in range(5)]
labels = ["likes", "owns", "knows", "rates"]


@st.composite
def graphs_with_sets(draw):
    """A random typed graph plus disjoint query/context node sets."""
    graph = KnowledgeGraph()
    for person in people:
        graph.add_edge(person, "type", "person")
    n_facts = draw(st.integers(3, 30))
    for _ in range(n_facts):
        subject = draw(st.sampled_from(people))
        label = draw(st.sampled_from(labels))
        obj = draw(st.sampled_from(people + values))
        if subject != obj:
            graph.add_edge(subject, label, obj)
    query_size = draw(st.integers(1, 3))
    context_size = draw(st.integers(0, 4))
    query = [graph.node_id(p) for p in people[:query_size]]
    context = [
        n for n in graph.nodes() if n not in query
    ][: context_size]
    return graph, query, context


def assert_distributions_equal(batch, reference):
    assert batch.label == reference.label
    assert batch.instance_support == reference.instance_support
    assert np.array_equal(batch.inst_query, reference.inst_query)
    assert np.array_equal(batch.inst_context, reference.inst_context)
    assert batch.cardinality_support == reference.cardinality_support
    assert np.array_equal(batch.card_query, reference.card_query)
    assert np.array_equal(batch.card_context, reference.card_context)
    assert batch.inst_query.dtype == reference.inst_query.dtype
    assert batch.card_query.dtype == reference.card_query.dtype


class TestDistributionParity:
    @given(graphs_with_sets(), st.booleans())
    @settings(max_examples=40, deadline=None)
    def test_batch_equals_per_label(self, case, none_bucket):
        graph, query, context = case
        candidates = sorted(graph.incident_labels(query + context))
        candidates.append("never_seen_label")  # absent labels must work too
        batch = build_all_distributions(
            graph, query, context, candidates, none_bucket=none_bucket
        )
        assert list(batch) == candidates
        for label in candidates:
            reference = build_distributions(
                graph, query, context, label, none_bucket=none_bucket
            )
            assert_distributions_equal(batch[label], reference)

    @given(graphs_with_sets())
    @settings(max_examples=20, deadline=None)
    def test_batch_after_mutation_tracks_graph(self, case):
        graph, query, context = case
        graph._compiled()  # warm the cache, then invalidate it
        graph.add_edge(people[0], "rates", "v0")
        label = "rates"
        batch = build_all_distributions(graph, query, context, [label])
        assert_distributions_equal(
            batch[label], build_distributions(graph, query, context, label)
        )

    @given(graphs_with_sets())
    @settings(max_examples=20, deadline=None)
    def test_batch_with_duplicate_members(self, case):
        graph, query, context = case
        query = query + query  # duplicates count twice, like the reference
        for label in sorted(graph.incident_labels(query)):
            batch = build_all_distributions(graph, query, context, [label])
            assert_distributions_equal(
                batch[label], build_distributions(graph, query, context, label)
            )

    def test_empty_label_list(self):
        graph = KnowledgeGraph()
        graph.add_edge("a", "r", "b")
        assert build_all_distributions(graph, [0], [1], []) == {}


class TestPagerankParity:
    @given(graphs_with_sets(), st.integers(0, 7))
    @settings(max_examples=25, deadline=None)
    def test_batched_scores_per_node_matches_summed(self, case, extra):
        graph, query, _ = case
        nodes = list(dict.fromkeys(query + [extra % graph.node_count]))
        ppr = PersonalizedPageRank(graph)
        batched = ppr.scores_per_node(nodes)
        summed = np.zeros(graph.node_count)
        for node in nodes:
            summed += ppr.scores([node])
        assert np.abs(batched - summed).max() < 1e-12

    @given(graphs_with_sets())
    @settings(max_examples=15, deadline=None)
    def test_batch_iteration_matches_per_column_with_tolerance(self, case):
        graph, query, _ = case
        transition = transition_matrix(graph)
        n = graph.node_count
        columns = [personalization_vector(graph, [node]) for node in query]
        v = np.stack(columns, axis=1)
        batched = power_iteration_batch(
            transition, v, iterations=50, tolerance=1e-10
        )
        for j, column in enumerate(columns):
            single = power_iteration(
                transition, column, iterations=50, tolerance=1e-10
            )
            assert np.abs(batched[:, j] - single).max() < 1e-12

    @given(graphs_with_sets())
    @settings(max_examples=15, deadline=None)
    def test_python_backend_unchanged_by_batching(self, case):
        graph, query, _ = case
        scipy_ppr = PersonalizedPageRank(graph, backend="scipy")
        python_ppr = PersonalizedPageRank(graph, backend="python")
        got = python_ppr.scores_per_node(query)
        want = scipy_ppr.scores_per_node(query)
        assert np.abs(got - want).max() < 1e-9

    @given(graphs_with_sets(), st.integers(0, 12))
    @settings(max_examples=25, deadline=None)
    def test_top_k_matches_full_sort_reference(self, case, k):
        graph, query, _ = case
        ppr = PersonalizedPageRank(graph)
        got = ppr.top_k(query, k)
        # Reference: the pre-argpartition implementation.
        scores = ppr.scores_per_node(query)
        excluded = set(query)
        expected = []
        if k > 0:
            for node in np.argsort(-scores, kind="stable"):
                node = int(node)
                if node in excluded:
                    continue
                if scores[node] <= 0:
                    break
                expected.append((node, float(scores[node])))
                if len(expected) == k:
                    break
        assert got == expected


class TestFindNCParity:
    @given(graphs_with_sets())
    @settings(max_examples=10, deadline=None)
    def test_batch_and_reference_pipelines_agree(self, case):
        graph, query, _ = case
        batch = FindNC(graph, context_size=4, rng=42).run(query)
        reference = FindNC(
            graph, context_size=4, rng=42, batch_distributions=False
        ).run(query)
        assert batch.context.ranked_nodes == reference.context.ranked_nodes
        assert [(r.label, r.score, r.inst_p_value, r.card_p_value) for r in batch.results] == [
            (r.label, r.score, r.inst_p_value, r.card_p_value)
            for r in reference.results
        ]
        assert batch.notable_labels() == reference.notable_labels()


class TestResultForIndex:
    """FindNCResult.result_for: dict index must behave like the old scan."""

    @staticmethod
    def _result(labels):
        from repro.core.context import ContextResult
        from repro.core.discrimination import DiscriminationResult
        from repro.core.findnc import FindNCResult

        return FindNCResult(
            query=(0,),
            context=ContextResult(
                query=(0,),
                ranked_nodes=[],
                scores={},
                elapsed_seconds=0.0,
                algorithm="test",
            ),
            results=[
                DiscriminationResult(label=l, score=0.0, inst_score=0.0, card_score=0.0)
                for l in labels
            ],
            elapsed_context=0.0,
            elapsed_discrimination=0.0,
        )

    def test_lookup_and_unknown(self):
        result = self._result(["a", "b"])
        assert result.result_for("a") is result.results[0]
        import pytest

        with pytest.raises(KeyError):
            result.result_for("missing")

    def test_duplicate_labels_return_first_match(self):
        result = self._result(["a", "a"])
        assert result.result_for("a") is result.results[0]

    def test_in_place_replacement_invalidates_cache(self):
        from repro.core.discrimination import DiscriminationResult

        result = self._result(["a", "b"])
        assert result.result_for("a") is result.results[0]
        replacement = DiscriminationResult(
            label="a", score=1.0, inst_score=1.0, card_score=0.0
        )
        result.results[0] = replacement  # same length: the old guard missed this
        assert result.result_for("a") is replacement
