"""Edge-label conventions.

The paper assumes that "for every edge e with type psi(e) = l exists a
reverse edge e^-1 with psi(e^-1) = l^-1", modelling pairs such as
``presidentOf`` / ``hasPresident``. We realise ``l^-1`` as the label string
with an ``_inv`` suffix; inverting twice returns the base label.
"""

from __future__ import annotations

INVERSE_SUFFIX = "_inv"

#: The label connecting an entity to its type node (rdf:type in YAGO).
TYPE_LABEL = "type"

#: The label connecting a type node to its super-type (rdfs:subClassOf).
SUBCLASS_OF_LABEL = "subclassOf"


def inverse_label(label: str) -> str:
    """Return ``l^-1`` for ``l`` — an involution.

    >>> inverse_label("hasChild")
    'hasChild_inv'
    >>> inverse_label(inverse_label("hasChild"))
    'hasChild'
    """
    if not label:
        raise ValueError("edge label must not be empty")
    if label.endswith(INVERSE_SUFFIX):
        return label[: -len(INVERSE_SUFFIX)]
    return label + INVERSE_SUFFIX


def is_inverse_label(label: str) -> bool:
    """Whether ``label`` denotes a reverse edge.

    >>> is_inverse_label("hasChild_inv")
    True
    >>> is_inverse_label("hasChild")
    False
    """
    return label.endswith(INVERSE_SUFFIX)


def base_label(label: str) -> str:
    """Strip an inverse marker if present.

    >>> base_label("hasChild_inv")
    'hasChild'
    >>> base_label("hasChild")
    'hasChild'
    """
    if is_inverse_label(label):
        return label[: -len(INVERSE_SUFFIX)]
    return label


class LabelTable:
    """Interns label strings to dense integer ids (and back).

    Adjacency structures key on label ids so that long label strings are
    stored once. Mirrors :class:`repro.store.dictionary.TermDictionary` but
    for plain strings.
    """

    __slots__ = ("_label_to_id", "_id_to_label")

    def __init__(self) -> None:
        self._label_to_id: dict[str, int] = {}
        self._id_to_label: list[str] = []

    def intern(self, label: str) -> int:
        """The id of ``label``, allocating the next dense id on first sight."""
        existing = self._label_to_id.get(label)
        if existing is not None:
            return existing
        new_id = len(self._id_to_label)
        self._label_to_id[label] = new_id
        self._id_to_label.append(label)
        return new_id

    def lookup(self, label: str) -> int | None:
        """The id of ``label``, or ``None`` when it was never interned."""
        return self._label_to_id.get(label)

    def name(self, label_id: int) -> str:
        """The label string of ``label_id`` (IndexError when out of range)."""
        if label_id < 0:
            raise IndexError(f"label id must be non-negative, got {label_id}")
        return self._id_to_label[label_id]

    def __contains__(self, label: object) -> bool:
        return label in self._label_to_id

    def __len__(self) -> int:
        return len(self._id_to_label)

    def __iter__(self):
        return iter(self._id_to_label)
