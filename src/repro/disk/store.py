"""Single-file binary snapshot store with an mmap zero-copy reader.

One compiled graph version persists as one file::

    [ magic "RPROSNAP" | u32 format version | u32 header length
      | header JSON | padding to 8 | data region ]

The data region holds the same blocks :mod:`repro.parallel.shm` publishes
over shared memory — the eight :data:`~repro.graph.compiled.ARRAY_FIELDS`
arrays, the UTF-8-packed node/label name tables, and (optionally) the
frozen PPR transition matrix's CSR triple
(:data:`~repro.parallel.shm.TRANSITION_FIELDS`) — every block 8-byte
aligned, described by the JSON header (name → offset/length/dtype,
offsets relative to the data region so the header's own length never
shifts them).

The reader (:func:`open_snapshot`) maps the file once with
:class:`numpy.memmap` and reconstructs the snapshot as read-only views —
:meth:`CompiledGraph.from_arrays <repro.graph.compiled.CompiledGraph.from_arrays>`
over the mapping, a lazy :class:`~repro.parallel.shm.SharedNameTable`
over the name blobs — so a cold start costs one ``open`` + one ``mmap``
instead of parsing a dump and recompiling: pages fault in on first
touch, and the page cache shares them across every process serving the
same file. :class:`DiskSnapshot` exposes the same attach surface as the
shm :class:`~repro.parallel.shm.AttachedSnapshot`, which is what lets
:class:`~repro.parallel.shm.SnapshotGraphView` (and therefore the whole
FindNC pipeline, thread and process backends alike) run straight off
disk with no :class:`~repro.graph.model.KnowledgeGraph` in memory.

Lifecycle: snapshot files are immutable once written (the writer goes
through a temp file + atomic rename, so readers never observe a torn
file). Unlike shm segments there is nothing to unlink — a
:class:`DiskSnapshotPublication` hands the engine's segment-lifecycle
plumbing a no-op retirement.
"""

from __future__ import annotations

import json
import os
import struct
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.errors import ReproError
from repro.graph.compiled import ARRAY_FIELDS, CompiledGraph
from repro.graph.labels import LabelTable
from repro.parallel.shm import (
    TRANSITION_FIELDS,
    SharedNameTable,
    SnapshotGraphView,
    _aligned,
    _encode_names,
    build_transition_csr,
    transition_blocks,
)

if TYPE_CHECKING:  # pragma: no cover - annotation-only imports
    from collections.abc import Sequence

    from repro.graph.model import KnowledgeGraph

#: File magic: 8 bytes, never changes across format versions.
MAGIC = b"RPROSNAP"

#: Bump on any incompatible layout change; readers reject other versions.
FORMAT_VERSION = 1

#: magic + u32 format version + u32 header length (little-endian).
_PREAMBLE = struct.Struct("<8sII")


class SnapshotFormatError(ReproError):
    """The file is not a valid snapshot (bad magic, version, or layout)."""


def _take(names, count: int) -> "list[str]":
    """First ``count`` names as a list; works for lists and lazy tables."""
    try:
        return list(names[:count])
    except TypeError:  # SharedNameTable indexes ints only
        return [names[index] for index in range(count)]


@dataclass(frozen=True)
class DiskSnapshotHeader:
    """The picklable identity of one snapshot file.

    The disk twin of :class:`~repro.parallel.shm.SharedSnapshotHeader`:
    everything a worker process needs to reattach — here just the *path*
    (the block table lives in the file itself and is re-read on open) and
    the scalar metadata. Shipped with every process-backend task when the
    engine serves a disk snapshot.
    """

    path: str
    graph_name: str
    version: int
    node_count: int
    label_count: int

    @property
    def segment(self) -> str:
        """A stable rendezvous key, name-compatible with shm segments."""
        return f"file://{self.path}"


def save_snapshot(
    compiled: CompiledGraph,
    node_names: "Sequence[str]",
    label_names: "Sequence[str]",
    path: "str | os.PathLike[str]",
    *,
    graph_name: str = "knowledge-graph",
    transition=None,
) -> int:
    """Write one compiled snapshot (plus name tables) to ``path``.

    The exact block set :func:`~repro.parallel.shm.publish_snapshot`
    exports to shared memory, so a file round-trip is byte-identical to
    an shm round-trip. ``node_names`` / ``label_names`` are sliced to the
    snapshot's counts; ``transition`` (optional scipy CSR) persists the
    frozen PPR transition so a cold-started server adopts it instead of
    rebuilding ``weighted_adjacency``.

    Writes via a temp file + atomic rename (readers never see a torn
    file). Returns the total bytes written.
    """
    if len(node_names) < compiled.node_count:
        raise ValueError(
            f"need {compiled.node_count} node names, got {len(node_names)}"
        )
    if len(label_names) < compiled.label_count:
        raise ValueError(
            f"need {compiled.label_count} label names, got {len(label_names)}"
        )
    node_offsets, node_blob = _encode_names(_take(node_names, compiled.node_count))
    label_offsets, label_blob = _encode_names(_take(label_names, compiled.label_count))

    blocks: "list[tuple[str, np.ndarray]]" = list(compiled.arrays().items())
    blocks += [
        ("node_name_offsets", node_offsets),
        ("node_name_blob", node_blob),
        ("label_name_offsets", label_offsets),
        ("label_name_blob", label_blob),
    ]
    if transition is not None:
        if transition.shape != (compiled.node_count, compiled.node_count):
            raise ValueError(
                f"transition matrix shape {transition.shape} does not match "
                f"the snapshot's {compiled.node_count} nodes"
            )
        blocks += transition_blocks(transition)

    block_table: "list[tuple[str, dict]]" = []
    offset = 0
    for name, array in blocks:
        offset = _aligned(offset)
        block_table.append(
            (
                name,
                {
                    "offset": offset,
                    "length": int(array.shape[0]),
                    "dtype": array.dtype.name,
                },
            )
        )
        offset += array.nbytes
    data_bytes = offset

    header_json = json.dumps(
        {
            "graph_name": graph_name,
            "version": compiled.version,
            "node_count": compiled.node_count,
            "label_count": compiled.label_count,
            "blocks": block_table,
            "data_bytes": data_bytes,
        },
        sort_keys=True,
    ).encode("utf-8")
    data_start = _aligned(_PREAMBLE.size + len(header_json))
    total = data_start + data_bytes

    path = os.fspath(path)
    tmp_path = f"{path}.tmp.{os.getpid()}"
    try:
        with open(tmp_path, "wb") as handle:
            handle.write(_PREAMBLE.pack(MAGIC, FORMAT_VERSION, len(header_json)))
            handle.write(header_json)
            specs = dict(block_table)
            for name, array in blocks:
                if array.nbytes == 0:
                    continue
                handle.seek(data_start + specs[name]["offset"])
                handle.write(memoryview(np.ascontiguousarray(array)))
            handle.truncate(total)
        os.replace(tmp_path, path)
    except BaseException:
        if os.path.exists(tmp_path):  # pragma: no cover - only on write failure
            os.unlink(tmp_path)
        raise
    return total


def save_graph_snapshot(
    graph: "KnowledgeGraph",
    path: "str | os.PathLike[str]",
    *,
    include_transition: bool = True,
) -> int:
    """Persist ``graph``'s current compiled snapshot (convenience wrapper).

    With ``include_transition`` (default) the Equation-2 transition
    matrix is built once here and baked into the file, trading a little
    compile time for zero-build serving warm-up.
    """
    from repro.graph.matrix import transition_from_snapshot

    compiled = graph.compiled()
    table = graph._label_table()  # noqa: SLF001 - label ids only grow
    return save_snapshot(
        compiled,
        graph._node_names_list(),  # noqa: SLF001 - sliced to the snapshot inside
        [table.name(label_id) for label_id in range(compiled.label_count)],
        path,
        graph_name=graph.name,
        transition=transition_from_snapshot(compiled) if include_transition else None,
    )


class DiskSnapshotPublication:
    """The engine-facing handle of a served snapshot file.

    Plays the role :class:`~repro.parallel.shm.SharedSnapshot` plays for
    shm segments — the object the engine parks in its pinned state and
    the worker pool refcounts — except retirement is free: the file is
    immutable and owned by whoever compiled it, so :meth:`unlink` is a
    deliberate no-op (serving never deletes data).
    """

    def __init__(self, header: DiskSnapshotHeader) -> None:
        self.header = header

    @property
    def segment(self) -> str:
        """The rendezvous key (``file://`` + path)."""
        return self.header.segment

    @property
    def version(self) -> int:
        """The graph version the file holds."""
        return self.header.version

    def unlink(self) -> None:
        """No-op: snapshot files outlive the process that serves them."""

    close = unlink


class DiskSnapshot:
    """A memory-mapped, read-only reconstruction of a snapshot file.

    The disk twin of :class:`~repro.parallel.shm.AttachedSnapshot`, with
    the identical attach surface (``header`` / ``compiled`` /
    ``node_names`` / ``label_table`` / ``transition()`` / ``close()``),
    so :class:`~repro.parallel.shm.SnapshotGraphView` and the worker loop
    treat both transports interchangeably.
    """

    def __init__(self, path: "str | os.PathLike[str]") -> None:
        path = os.path.abspath(os.fspath(path))
        with open(path, "rb") as handle:
            preamble = handle.read(_PREAMBLE.size)
            if len(preamble) < _PREAMBLE.size:
                raise SnapshotFormatError(f"{path}: file too short for a snapshot")
            magic, format_version, header_length = _PREAMBLE.unpack(preamble)
            if magic != MAGIC:
                raise SnapshotFormatError(f"{path}: not a snapshot file (bad magic)")
            if format_version != FORMAT_VERSION:
                raise SnapshotFormatError(
                    f"{path}: unsupported snapshot format version {format_version} "
                    f"(this build reads version {FORMAT_VERSION})"
                )
            try:
                meta = json.loads(handle.read(header_length).decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError) as error:
                raise SnapshotFormatError(f"{path}: corrupt snapshot header") from error
        data_start = _aligned(_PREAMBLE.size + header_length)
        expected = data_start + meta["data_bytes"]
        actual = os.path.getsize(path)
        if actual < expected:
            raise SnapshotFormatError(
                f"{path}: truncated snapshot ({actual} bytes, header declares "
                f"{expected})"
            )

        self.header = DiskSnapshotHeader(
            path=path,
            graph_name=meta["graph_name"],
            version=meta["version"],
            node_count=meta["node_count"],
            label_count=meta["label_count"],
        )
        self._specs = {name: spec for name, spec in meta["blocks"]}
        self._data_start = data_start
        # One mapping for the whole file; every block is a zero-copy view
        # into it. mode="r" makes the views read-only at the OS level.
        self._mm: "np.memmap | None" = np.memmap(path, dtype=np.uint8, mode="r")

        missing = [name for name, _ in ARRAY_FIELDS if name not in self._specs]
        if missing:
            raise SnapshotFormatError(f"{path}: snapshot is missing blocks {missing}")
        #: The reconstructed snapshot; arrays view the file mapping.
        self.compiled = CompiledGraph.from_arrays(
            version=self.header.version,
            node_count=self.header.node_count,
            label_count=self.header.label_count,
            arrays={name: self._view(name) for name, _ in ARRAY_FIELDS},
        )
        #: Lazy node-name table (phi of Definition 1).
        self.node_names = SharedNameTable(
            self._view("node_name_offsets"), self._view("node_name_blob")
        )
        # Label vocabularies are small; decode eagerly into a real
        # LabelTable, exactly as the shm attach does.
        label_names = SharedNameTable(
            self._view("label_name_offsets"), self._view("label_name_blob")
        )
        self.label_table = LabelTable()
        for label in label_names:
            self.label_table.intern(label)
        label_names.release()
        self._transition = None

    def _view(self, name: str) -> np.ndarray:
        spec = self._specs[name]
        assert self._mm is not None
        start = self._data_start + spec["offset"]
        nbytes = spec["length"] * np.dtype(spec["dtype"]).itemsize
        view = self._mm[start : start + nbytes].view(spec["dtype"])
        if view.shape[0] != spec["length"]:  # pragma: no cover - header/size drift
            raise SnapshotFormatError(
                f"{self.header.path}: block {name!r} extends past end of file"
            )
        return view

    def transition(self):
        """The persisted frozen PPR transition matrix, or ``None``.

        Rebuilt (and memoized) as a scipy CSR over views of the mapping's
        :data:`~repro.parallel.shm.TRANSITION_FIELDS` blocks; ``None``
        for files saved without one (servers then build it once at pin).
        """
        if self._transition is not None:
            return self._transition
        if any(name not in self._specs for name in TRANSITION_FIELDS):
            return None
        self._transition = build_transition_csr(
            self._view("transition_data"),
            self._view("transition_indices"),
            self._view("transition_indptr"),
            self.header.node_count,
        )
        return self._transition

    def publication(self) -> DiskSnapshotPublication:
        """The handle the engine ships to process workers (path + scalars)."""
        return DiskSnapshotPublication(self.header)

    def close(self) -> None:
        """Drop every view and release the mapping.

        Callers must not touch :attr:`compiled` / :attr:`node_names`
        afterwards (same contract as the shm attach).
        """
        if self._mm is None:
            return
        self.compiled = None  # type: ignore[assignment]
        self._transition = None
        self.node_names.release()
        self.node_names = None  # type: ignore[assignment]
        self._mm = None

    def __enter__(self) -> "DiskSnapshot":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def open_snapshot(path: "str | os.PathLike[str]") -> DiskSnapshot:
    """Map a snapshot file written by :func:`save_snapshot` (zero-copy)."""
    from repro.service import faults  # lazy: avoids a service<->disk cycle

    if faults.fire("snapshot.vanish"):
        raise FileNotFoundError(
            f"fault injection: snapshot file {os.fspath(path)!r} vanished"
        )
    return DiskSnapshot(path)


def inspect_snapshot(path: "str | os.PathLike[str]") -> dict:
    """The stored header of a snapshot file, as one JSON-ready dict.

    The audit surface behind ``repro inspect``: format version, graph
    identity (name / version / node / edge / label counts), name-table
    sizes, whether the frozen PPR transition CSR is baked in, and the
    per-block layout — everything an operator needs to check what a
    registry actually holds, read without faulting in the data region
    (one ``open`` + the header bytes; blocks are only *described*).
    """
    path = os.path.abspath(os.fspath(path))
    with open(path, "rb") as handle:
        preamble = handle.read(_PREAMBLE.size)
        if len(preamble) < _PREAMBLE.size:
            raise SnapshotFormatError(f"{path}: file too short for a snapshot")
        magic, format_version, header_length = _PREAMBLE.unpack(preamble)
        if magic != MAGIC:
            raise SnapshotFormatError(f"{path}: not a snapshot file (bad magic)")
        if format_version != FORMAT_VERSION:
            raise SnapshotFormatError(
                f"{path}: unsupported snapshot format version {format_version} "
                f"(this build reads version {FORMAT_VERSION})"
            )
        try:
            meta = json.loads(handle.read(header_length).decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise SnapshotFormatError(f"{path}: corrupt snapshot header") from error
    specs = dict(meta["blocks"])

    def _block_bytes(name: str) -> int:
        spec = specs[name]
        return spec["length"] * np.dtype(spec["dtype"]).itemsize

    return {
        "path": path,
        "format_version": format_version,
        "graph_name": meta["graph_name"],
        "version": meta["version"],
        "nodes": meta["node_count"],
        "edges": specs["targets"]["length"],
        "labels": meta["label_count"],
        "file_bytes": os.path.getsize(path),
        "data_bytes": meta["data_bytes"],
        "node_name_table_bytes": (
            _block_bytes("node_name_offsets") + _block_bytes("node_name_blob")
        ),
        "label_name_table_bytes": (
            _block_bytes("label_name_offsets") + _block_bytes("label_name_blob")
        ),
        "has_transition": all(name in specs for name in TRANSITION_FIELDS),
        "blocks": [
            {
                "name": name,
                "offset": spec["offset"],
                "length": spec["length"],
                "dtype": spec["dtype"],
            }
            for name, spec in meta["blocks"]
        ],
    }


def open_snapshot_view(path: "str | os.PathLike[str]") -> SnapshotGraphView:
    """Open ``path`` and wrap it in the graph reader surface.

    The one-call cold start: the returned
    :class:`~repro.parallel.shm.SnapshotGraphView` feeds straight into
    :class:`~repro.core.findnc.FindNC` or
    :class:`~repro.service.engine.NCEngine` — no parse, no compile, no
    :class:`~repro.graph.model.KnowledgeGraph`.
    """
    return SnapshotGraphView(open_snapshot(path))
