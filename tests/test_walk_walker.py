"""Unit tests for the random walker."""

from collections import Counter

import pytest

from repro.graph.builder import GraphBuilder
from repro.walk.walker import RandomWalker, WalkRecord


@pytest.fixture()
def graph():
    return (
        GraphBuilder()
        .fact("a", "common", "b")
        .fact("a", "common", "c")
        .fact("b", "common", "c")
        .fact("c", "common", "a")
        .fact("a", "rare", "d")
        .build()
    )


class TestWalkRecord:
    def test_properties(self):
        record = WalkRecord((1, 2, 3), ("r", "s"))
        assert record.length == 2
        assert record.start == 1
        assert record.end == 3

    def test_zero_length(self):
        record = WalkRecord((7,), ())
        assert record.length == 0
        assert record.start == record.end == 7


class TestStep:
    def test_step_returns_real_edge(self, graph):
        walker = RandomWalker(graph, rng=1)
        a = graph.node_id("a")
        for _ in range(50):
            label, target = walker.step(a)
            assert graph.has_edge(a, label, target)

    def test_dead_end_returns_none(self):
        graph = GraphBuilder(add_inverse=False).fact("a", "r", "b").build()
        walker = RandomWalker(graph, rng=1)
        assert walker.step(graph.node_id("b")) is None

    def test_weighted_walker_prefers_rare_labels(self, graph):
        walker = RandomWalker(graph, weighted=True, rng=5)
        a = graph.node_id("a")
        labels = Counter(walker.step(a)[0] for _ in range(4000))
        # 'rare' has weight ~0.92 vs 'common' ~0.58: per-edge, the rare
        # edge must be chosen more often than each single common edge.
        per_common_edge = labels["common"] / 2
        assert labels["rare"] > per_common_edge

    def test_uniform_walker_ignores_weights(self, graph):
        walker = RandomWalker(graph, weighted=False, rng=5)
        a = graph.node_id("a")
        labels = Counter(walker.step(a)[0] for _ in range(6000))
        per_common_edge = labels["common"] / 2
        # Uniform: every out-edge equally likely (a has common x2, rare x1,
        # and inverse edges).
        assert labels["rare"] == pytest.approx(per_common_edge, rel=0.25)


class TestWalk:
    def test_walk_length_bounded(self, graph):
        walker = RandomWalker(graph, rng=3)
        record = walker.walk(graph.node_id("a"), max_length=4)
        assert record.length <= 4
        assert len(record.nodes) == record.length + 1

    def test_walk_path_is_connected(self, graph):
        walker = RandomWalker(graph, rng=3)
        record = walker.walk(graph.node_id("a"), max_length=6)
        for (src, dst), label in zip(zip(record.nodes, record.nodes[1:]), record.labels):
            assert graph.has_edge(src, label, dst)

    def test_stop_at_terminates_early(self, graph):
        walker = RandomWalker(graph, rng=3)
        targets = {graph.node_id("c")}
        for _ in range(20):
            record = walker.walk(graph.node_id("a"), max_length=50, stop_at=targets)
            if record.end in targets:
                # Stops at the *first* visit.
                assert all(n not in targets for n in record.nodes[:-1])

    def test_negative_length_rejected(self, graph):
        walker = RandomWalker(graph, rng=3)
        with pytest.raises(ValueError):
            walker.walk(0, max_length=-1)

    def test_determinism_per_seed(self, graph):
        r1 = RandomWalker(graph, rng=42).walk(0, 5)
        r2 = RandomWalker(graph, rng=42).walk(0, 5)
        assert r1 == r2

    def test_cache_invalidation_on_graph_change(self, graph):
        walker = RandomWalker(graph, rng=1)
        walker.step(graph.node_id("a"))
        graph.add_edge("a", "fresh", "e")
        seen = {walker.step(graph.node_id("a"))[0] for _ in range(300)}
        assert "fresh" in seen
