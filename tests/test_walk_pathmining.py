"""Unit tests for the PathMining sampler."""

import pytest

from repro.graph.builder import GraphBuilder
from repro.walk.pathmining import PathMiner


@pytest.fixture()
def graph():
    builder = GraphBuilder()
    for i in range(8):
        builder.typed(f"actor{i}", "actor")
        builder.fact(f"actor{i}", "actedIn", "blockbuster")
    builder.typed("loner", "actor")  # no movie
    return builder.build()


class TestMine:
    def test_finds_co_actor_pattern(self, graph):
        miner = PathMiner(graph, rng=7)
        query = [graph.node_id("actor0"), graph.node_id("actor1")]
        mined = miner.mine(query, samples=4000, max_length=3)
        assert mined.hits > 0
        labels = {p.labels for p in mined.paths}
        assert ("actedIn", "actedIn_inv") in labels

    def test_records_walk_order_not_reversed(self, graph):
        # Walks reach the query via actedIn (movie -> actor is actedIn_inv);
        # a 1-hop hit from the movie node mines ("actedIn_inv",).
        miner = PathMiner(graph, rng=7)
        query = [graph.node_id("actor0")]
        mined = miner.mine(query, samples=4000, max_length=1)
        labels = {p.labels for p in mined.paths}
        assert ("actedIn_inv",) in labels
        assert ("actedIn",) not in labels  # nothing points at the query that way

    def test_end_type_is_start_type(self, graph):
        miner = PathMiner(graph, rng=7)
        query = [graph.node_id("actor0")]
        mined = miner.mine(query, samples=4000, max_length=3)
        co_actor = [p for p in mined.paths if p.labels == ("actedIn", "actedIn_inv")]
        assert co_actor and co_actor[0].metapath.end_type == "actor"

    def test_probabilities_normalized(self, graph):
        miner = PathMiner(graph, rng=7)
        mined = miner.mine([graph.node_id("actor0")], samples=3000, max_length=4)
        assert sum(p.probability for p in mined.paths) == pytest.approx(1.0)

    def test_counts_sorted_descending(self, graph):
        miner = PathMiner(graph, rng=7)
        mined = miner.mine([graph.node_id("actor0")], samples=3000, max_length=4)
        counts = [p.count for p in mined.paths]
        assert counts == sorted(counts, reverse=True)

    def test_max_paths_truncates(self, graph):
        miner = PathMiner(graph, rng=7)
        mined = miner.mine(
            [graph.node_id("actor0")], samples=3000, max_length=4, max_paths=2
        )
        assert len(mined) <= 2

    def test_hit_rate(self, graph):
        miner = PathMiner(graph, rng=7)
        mined = miner.mine([graph.node_id("actor0")], samples=1000, max_length=3)
        assert 0.0 <= mined.hit_rate <= 1.0
        assert mined.hit_rate == mined.hits / mined.samples

    def test_deterministic_under_seed(self, graph):
        query = [graph.node_id("actor0")]
        a = PathMiner(graph, rng=99).mine(query, samples=2000, max_length=3)
        b = PathMiner(graph, rng=99).mine(query, samples=2000, max_length=3)
        assert [(p.labels, p.count) for p in a.paths] == [
            (p.labels, p.count) for p in b.paths
        ]

    def test_unreachable_query_yields_no_paths(self):
        graph = (
            GraphBuilder()
            .fact("island", "r", "island2")
            .node("hermit")
            .build()
        )
        miner = PathMiner(graph, rng=1)
        mined = miner.mine([graph.node_id("hermit")], samples=500, max_length=3)
        assert mined.hits == 0
        assert len(mined) == 0


class TestValidation:
    def test_empty_query_rejected(self, graph):
        with pytest.raises(ValueError):
            PathMiner(graph, rng=1).mine([], samples=10)

    def test_bad_samples_rejected(self, graph):
        with pytest.raises(ValueError):
            PathMiner(graph, rng=1).mine([0], samples=0)

    def test_bad_max_length_rejected(self, graph):
        with pytest.raises(ValueError):
            PathMiner(graph, rng=1).mine([0], samples=10, max_length=0)

    def test_bad_max_paths_rejected(self, graph):
        with pytest.raises(ValueError):
            PathMiner(graph, rng=1).mine([0], samples=10, max_paths=0)

    def test_unknown_query_node_rejected(self, graph):
        with pytest.raises(ValueError):
            PathMiner(graph, rng=1).mine([10_000], samples=10)

    def test_whole_graph_query_rejected(self):
        graph = GraphBuilder().node("only").build()
        with pytest.raises(ValueError):
            PathMiner(graph, rng=1).mine([0], samples=10)
