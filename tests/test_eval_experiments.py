"""Tests for the experiment runners (small-scale settings).

These run the same code paths as the benchmarks on a scale-0.6 graph so
the unit suite stays fast while covering configuration and table shapes.
"""

import pytest

from repro.errors import ExperimentError
from repro.eval.experiments import (
    ExperimentSetting,
    authors_testcase,
    average_f1_by_context_size,
    context_size_sweep,
    distribution_figure,
    domains_table,
    ground_truth_for,
    resolve_domain_queries,
    significance_comparison,
    time_vs_path_length,
    time_vs_query_size,
)
from repro.datasets.seeds import ACTORS_DOMAIN


@pytest.fixture(scope="module")
def setting():
    return ExperimentSetting(scale=0.6)


class TestPlumbing:
    def test_graph_memoized(self, setting):
        assert setting.graph() is setting.graph()

    def test_with_dataset(self, setting):
        other = setting.with_dataset("linkedmdb")
        assert other.dataset == "linkedmdb"
        assert other.scale == setting.scale

    def test_resolve_domain_queries_nested(self, setting):
        graph = setting.graph()
        queries = resolve_domain_queries(graph, ACTORS_DOMAIN)
        assert [len(q) for q in queries] == [2, 3, 4, 5, 6]

    def test_resolve_missing_domain_raises(self, setting):
        graph = setting.with_dataset("linkedmdb").graph()
        from repro.datasets.seeds import POLITICIANS_DOMAIN

        with pytest.raises(ExperimentError):
            resolve_domain_queries(graph, POLITICIANS_DOMAIN)

    def test_ground_truth_memoized(self, setting):
        graph = setting.graph()
        query = resolve_domain_queries(graph, ACTORS_DOMAIN)[0]
        a = ground_truth_for(setting, graph, query)
        b = ground_truth_for(setting, graph, query)
        assert a is b


class TestRunners:
    def test_domains_table_shape(self, setting):
        table = domains_table(setting)
        assert table.columns == ["domain", "entity", "resolved", "out_degree"]
        assert len(table) == 18

    def test_context_size_sweep_rows(self, setting):
        table = context_size_sweep(setting, context_sizes=(10, 25))
        # 5 queries x 2 algorithms x 2 sizes
        assert len(table) == 20
        assert set(table.column("algorithm")) == {"ContextRW", "RandomWalk"}
        assert all(0.0 <= f1 <= 1.0 for f1 in table.column("f1"))

    def test_average_aggregation(self, setting):
        sweep = context_size_sweep(setting, context_sizes=(10, 25))
        averaged = average_f1_by_context_size(sweep)
        assert len(averaged) == 4  # 2 algorithms x 2 sizes

    def test_time_vs_query_size_rows(self, setting):
        table = time_vs_query_size(
            setting, query_sizes=(1, 2), context_size=20
        )
        assert len(table) == 4
        assert all(t >= 0 for t in table.column("seconds"))

    def test_time_vs_query_size_too_large_query(self, setting):
        with pytest.raises(ExperimentError):
            time_vs_query_size(setting, query_sizes=(7,))

    def test_time_vs_path_length_rows(self, setting):
        table = time_vs_path_length(
            setting, max_lengths=(3, 5), query_sizes=(2,), samples=2000
        )
        assert len(table) == 2

    def test_distribution_figure_instance(self, setting):
        table = distribution_figure(setting, label="created", channel="instance")
        assert table.columns == ["value", "query_probability", "context_probability"]
        total = sum(table.column("context_probability"))
        assert total == pytest.approx(1.0, abs=1e-6)

    def test_distribution_figure_cardinality(self, setting):
        table = distribution_figure(
            setting, label="hasWonPrize", channel="cardinality"
        )
        values = [int(v) for v in table.column("value")]
        assert values == sorted(values)

    def test_distribution_figure_bad_channel(self, setting):
        with pytest.raises(ExperimentError):
            distribution_figure(setting, channel="histogram")

    def test_significance_comparison_bounds(self, setting):
        table = significance_comparison(setting, context_size=40)
        for _label, find_p, rw_p, alpha in table.rows:
            assert 0.0 <= find_p <= 1.0
            assert 0.0 <= rw_p <= 1.0
            assert alpha == 0.05

    def test_authors_testcase_labels(self, setting):
        table = authors_testcase(setting, context_size=15, samples=60_000)
        labels = set(table.column("label"))
        assert "influences" in labels
        assert "created" in labels
