"""Section 4.2 "Metrics comparison" — ranking switches vs expert ranking.

Paper claims asserted: ordering. "We found that FindNC required 2 changes,
while KL-divergence and EMD required 4 and 5" — the multinomial test's
ranking needs the fewest switches to match the aggregated expert ranking,
EMD the most (we assert FindNC <= KL <= EMD with a tolerance of one
switch between KL and EMD).
"""

from conftest import run_once

from repro.eval.experiments import metrics_comparison


def test_metrics_comparison_switches(benchmark, setting):
    table = run_once(benchmark, metrics_comparison, setting)
    print()
    print(table.render())

    switches = dict(table.rows)
    assert switches["FindNC"] <= switches["KL"], (
        f"the multinomial ranking must be closest to the experts "
        f"(FindNC {switches['FindNC']} vs KL {switches['KL']})"
    )
    assert switches["FindNC"] <= switches["EMD"], (
        f"the multinomial ranking must beat EMD "
        f"(FindNC {switches['FindNC']} vs EMD {switches['EMD']})"
    )
    assert switches["KL"] <= switches["EMD"] + 1, (
        "KL should not be clearly worse than EMD (paper: 4 vs 5)"
    )
