"""Unit tests for entity search / name resolution."""

import pytest

from repro.errors import EntityResolutionError
from repro.graph.builder import GraphBuilder
from repro.graph.search import EntityIndex, normalize_name


class TestNormalizeName:
    @pytest.mark.parametrize(
        "left,right",
        [
            ("Angela Merkel", "angela_merkel"),
            ("ANGELA-MERKEL", "angela merkel"),
            ("Angela  Merkel", "angela merkel"),
            ("Angéla", "angéla"),  # decomposed vs composed accents
        ],
    )
    def test_equivalences(self, left, right):
        assert normalize_name(left) == normalize_name(right)

    def test_punctuation_folded(self):
        assert normalize_name("O'Brien, Jr.") == normalize_name("o brien jr")


class TestEntityIndex:
    @pytest.fixture()
    def graph(self):
        return (
            GraphBuilder()
            .typed("Angela_Merkel", "politician")
            .typed("Barack_Obama", "politician")
            .typed("Brad_Pitt", "actor")
            .build()
        )

    def test_exact_lookup(self, graph):
        index = EntityIndex(graph)
        assert index.lookup("Angela_Merkel") == [graph.node_id("Angela_Merkel")]

    def test_normalized_lookup(self, graph):
        index = EntityIndex(graph)
        assert index.resolve("angela merkel") == graph.node_id("Angela_Merkel")

    def test_resolve_unknown_raises_with_suggestions(self, graph):
        index = EntityIndex(graph)
        with pytest.raises(EntityResolutionError) as excinfo:
            index.resolve("Angela Merkle")  # typo
        assert "Angela_Merkel" in excinfo.value.candidates

    def test_resolve_ambiguous_raises(self):
        graph = (
            GraphBuilder().node("John_Smith").node("john smith").build()
        )
        index = EntityIndex(graph)
        with pytest.raises(EntityResolutionError):
            index.resolve("john_smith")

    def test_resolve_all_preserves_order(self, graph):
        index = EntityIndex(graph)
        ids = index.resolve_all(["Brad_Pitt", "Angela_Merkel"])
        assert ids == [graph.node_id("Brad_Pitt"), graph.node_id("Angela_Merkel")]

    def test_suggest_limit(self, graph):
        index = EntityIndex(graph)
        assert len(index.suggest("angela", limit=1)) <= 1

    def test_contains(self, graph):
        index = EntityIndex(graph)
        assert "brad pitt" in index
        assert "nobody" not in index
        assert 42 not in index

    def test_index_refreshes_after_mutation(self, graph):
        index = EntityIndex(graph)
        assert "new person" not in index
        graph.add_node("New_Person")
        assert index.resolve("new person") == graph.node_id("New_Person")


class TestResolveNodeRefs:
    def test_shared_resolution_order(self):
        from repro.graph.builder import GraphBuilder
        from repro.graph.search import EntityIndex, resolve_node_refs

        graph = GraphBuilder().typed("Angela_Merkel", "politician").build()
        graph.add_node("1954")  # a node literally named "1954"
        index = EntityIndex(graph)
        merkel = graph.node_id("Angela_Merkel")
        resolved = resolve_node_refs(
            graph,
            [merkel, "Angela_Merkel", "angela merkel", str(merkel), "1954"],
            lambda: index,
        )
        # id, exact name, fuzzy name, and digit-string id all agree;
        # the node NAMED "1954" wins over node id 1954 (which is absent).
        assert resolved[:4] == [merkel] * 4
        assert resolved[4] == graph.node_id("1954")
