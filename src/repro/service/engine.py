"""`NCEngine` — a thread-safe FindNC query engine over one live graph.

The engine turns the library pipeline into a servable primitive:

* **Snapshot pinning.** Every request pins the graph's compiled columnar
  snapshot (:meth:`KnowledgeGraph.compiled`) together with a frozen
  PageRank selector (transition matrix built once per graph version) and
  a shared entity index. Requests then run lock-free against immutable
  state while writers keep mutating the graph; when
  :attr:`KnowledgeGraph.version` advances, the next request transparently
  re-pins.
* **Version-keyed result cache.** Results are cached under
  ``(graph.version, frozenset(query_ids), context_size, alpha,
  discriminator_params)`` in a :class:`~repro.service.cache.ResultCache`
  LRU — a mutation makes old entries unreachable instantly, and re-pinning
  purges them.
* **Request executor with single-flight coalescing.** Queries run on a
  bounded :class:`~concurrent.futures.ThreadPoolExecutor`; concurrent
  identical requests share one in-flight computation instead of
  recomputing a hot query N times.
* **Pluggable execution backend.** With ``executor="thread"`` (default)
  computations run on the executor threads — cached and coalesced
  traffic is served at memory speed, but *distinct* queries scale at
  ~1x per core because the pipeline's Python-level work holds the GIL.
  With ``executor="process"`` the thread pool only *dispatches*: the
  pinned snapshot is published once per graph version into shared
  memory (:mod:`repro.parallel.shm`) — together with the frozen PPR
  transition's CSR triple, which workers adopt instead of rebuilding —
  and the computations execute on a
  :class:`~repro.service.workers.ProcessWorkerPool`, so distinct-query
  throughput scales with cores. The cache, coalescing, name resolution
  and the HTTP server stay in the parent either way.
* **Graph-free serving.** The engine also accepts a *frozen* snapshot
  view (``repro.disk.open_snapshot_view`` over an mmapped snapshot
  file): same API, one pin for the process lifetime, and in process
  mode workers mmap the same file instead of receiving a fresh shm
  publication — no :class:`KnowledgeGraph` exists anywhere in the
  serving topology.
* **Multi-version hot swap.** A snapshot-backed engine re-pins onto a
  newly published file *while serving*: :meth:`NCEngine.swap_snapshot`
  atomically adopts the new version (new requests pin it immediately,
  the version-keyed cache invalidates by unreachability) and drains the
  old one — every request holds a per-pin in-flight reference, and the
  superseded pin is retired (worker-pool segment handed to the
  refcount/retire machinery, old mapping closed) exactly when its last
  request completes. ``repro serve --snapshot-dir`` plus
  ``POST /admin/reload`` drive this from a
  :class:`~repro.disk.registry.SnapshotRegistry`.

Determinism: each computation derives its RNG seed from the cache key, so
identical requests produce identical results whether or not they hit the
cache — and whichever backend executes them (the worker replicates this
method's computation exactly; ``tests/test_service_workers.py`` pins
thread/process parity).

Cached :class:`~repro.core.findnc.FindNCResult` objects are shared across
requests — treat them as read-only.
"""

from __future__ import annotations

import hashlib
import os
import random
import threading
import time
from collections.abc import Sequence
from concurrent.futures import Future, ThreadPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeoutError
from dataclasses import dataclass, field

from repro.core.context import RandomWalkContext
from repro.core.discrimination import MultinomialDiscriminator
from repro.core.findnc import FindNC, FindNCResult
from repro.errors import DeadlineExceededError, EngineSaturatedError, QueryError
from repro.graph.compiled import CompiledGraph
from repro.graph.model import KnowledgeGraph, NodeRef
from repro.graph.search import EntityIndex, resolve_node_refs
from repro.parallel.shm import SharedSnapshot, StaleSnapshotError, publish_snapshot
from repro.service import faults
from repro.service.cache import CacheStats, ResultCache
from repro.service.metrics import ServiceMetrics
from repro.service.tracing import Tracer, log_event
from repro.service.workers import ProcessWorkerPool, WorkerConfig, WorkerCrashError


class CircuitBreaker:
    """Closed → open → half-open breaker over the worker-pool backend.

    ``record_failure`` on every :class:`WorkerCrashError`; ``threshold``
    *consecutive* failures trip the breaker **open** — the engine stops
    dispatching to the pool and serves the degraded thread-local
    fallback instead (compute is pure, so answers stay identical; only
    throughput degrades). After ``reset_s`` the breaker allows one
    **half-open** probe per window; a probe success closes it, a probe
    failure re-opens it. ``/healthz`` reports ``degraded`` with
    :attr:`reason` whenever the breaker is not closed.

    Thread-safe; ``clock`` is injectable for tests.
    """

    def __init__(
        self, *, threshold: int = 5, reset_s: float = 30.0, clock=time.monotonic
    ) -> None:
        if threshold < 1:
            raise ValueError(f"threshold must be >= 1, got {threshold}")
        if reset_s <= 0:
            raise ValueError(f"reset_s must be > 0, got {reset_s}")
        self.threshold = threshold
        self.reset_s = reset_s
        self._clock = clock
        self._lock = threading.Lock()
        self._state = "closed"
        self._failures = 0
        self._opened_at = 0.0
        self._probe_at = 0.0
        self._trips = 0
        self._reason = ""

    def allow(self) -> bool:
        """Whether the protected backend may be tried right now."""
        with self._lock:
            if self._state == "closed":
                return True
            now = self._clock()
            if self._state == "open":
                if now - self._opened_at >= self.reset_s:
                    self._state = "half_open"
                    self._probe_at = now
                    return True
                return False
            # half_open: one probe per reset window. Time-based (rather
            # than a "probe in flight" flag) so a probe that ends in a
            # neutral outcome can never wedge the breaker half-open.
            if now - self._probe_at >= self.reset_s:
                self._probe_at = now
                return True
            return False

    def record_success(self) -> None:
        """A backend call succeeded: close the breaker, clear the streak."""
        with self._lock:
            self._failures = 0
            self._state = "closed"
            self._reason = ""

    def record_failure(self, reason: str) -> None:
        """A backend call failed; may trip the breaker open."""
        with self._lock:
            self._failures += 1
            if self._state == "half_open" or self._failures >= self.threshold:
                if self._state != "open":
                    self._trips += 1
                self._state = "open"
                self._opened_at = self._clock()
                self._reason = reason

    @property
    def state(self) -> str:
        """``"closed"``, ``"open"``, or ``"half_open"``."""
        with self._lock:
            return self._state

    @property
    def reason(self) -> str:
        """The failure that tripped the breaker (empty when closed)."""
        with self._lock:
            return self._reason

    @property
    def trips(self) -> int:
        """How many times the breaker has transitioned to open."""
        with self._lock:
            return self._trips

    def as_dict(self) -> dict:
        """The JSON shape embedded in ``/stats``."""
        with self._lock:
            return {
                "state": self._state,
                "consecutive_failures": self._failures,
                "trips": self._trips,
                "reason": self._reason,
            }


@dataclass(frozen=True)
class EngineConfig:
    """Every :class:`NCEngine` tuning knob, validated in one place.

    The engine's constructor historically grew one keyword argument per
    PR (pipeline defaults, cache size, executor choice, resilience
    budgets, breaker tuning); this dataclass is their single home. The
    CLI's ``serve`` flags build one (:func:`repro.cli.main`), embedders
    construct one directly — ``NCEngine(graph, config=cfg)`` — and the
    legacy per-kwarg form ``NCEngine(graph, max_workers=8, ...)`` still
    works: the engine assembles the config from the kwargs itself.

    Fields mirror the pre-consolidation constructor arguments exactly
    (same names, same defaults, same validation messages), plus
    ``snapshot_source`` — a human-readable description of where the
    served graph came from (``"dataset:yago"``, ``"snapshot:/path"``,
    ``"registry:/dir"``), surfaced by ``/v1/healthz`` so pollers and the
    load generator can assert which snapshot served a run. When unset it
    defaults to ``"snapshot"`` for frozen views and ``"live-graph"``
    otherwise.

    Instances are frozen: engine behaviour cannot be reconfigured after
    construction (use :func:`dataclasses.replace` to derive variants).
    """

    context_size: int = 100
    alpha: float = 0.05
    damping: float = 0.8
    iterations: int = 10
    discriminator_params: "dict | None" = None
    excluded_labels: "frozenset[str] | None" = None
    include_inverse_labels: bool = False
    none_bucket: bool = True
    cache_size: int = 256
    max_workers: int = 4
    executor: str = "thread"
    seed: int = 0
    request_timeout: "float | None" = None
    max_pending: "int | None" = None
    retries: int = 2
    retry_backoff: float = 0.05
    breaker_threshold: int = 5
    breaker_reset_s: float = 30.0
    snapshot_source: "str | None" = None
    #: Micro-batching (process executor only): gather up to ``max_batch``
    #: concurrent requests pinned to the same snapshot for at most
    #: ``batch_window_ms`` and execute them with one shared power
    #: iteration per worker round-trip. ``max_batch=1`` disables batching.
    batch_window_ms: float = 0.0
    max_batch: int = 1
    #: Request tracing (see :mod:`repro.service.tracing`):
    #: ``trace_sample_rate`` head-samples that fraction of requests into
    #: full span trees; ``slow_query_ms`` additionally records *every*
    #: request and force-retains any that errors or runs at least this
    #: long; retained traces live in a ``trace_buffer``-deep ring served
    #: at ``GET /v1/debug/traces``. ``metrics_exemplars`` links latency
    #: histogram buckets to trace ids in the ``/v1/metrics`` exposition.
    trace_sample_rate: float = 0.0
    slow_query_ms: "float | None" = None
    trace_buffer: int = 256
    metrics_exemplars: bool = False

    def __post_init__(self) -> None:
        """Validate every knob; raises ``ValueError`` with a field-named message."""
        if self.context_size < 1:
            raise ValueError(
                f"context_size must be >= 1, got {self.context_size}"
            )
        if self.cache_size < 1:
            raise ValueError(f"cache_size must be >= 1, got {self.cache_size}")
        if self.max_workers < 1:
            raise ValueError(
                f"max_workers must be >= 1, got {self.max_workers}"
            )
        if self.executor not in ("thread", "process"):
            raise ValueError(
                f"executor must be 'thread' or 'process', got {self.executor!r}"
            )
        if self.request_timeout is not None and self.request_timeout <= 0:
            raise ValueError(
                f"request_timeout must be > 0, got {self.request_timeout}"
            )
        if self.max_pending is not None and self.max_pending < 1:
            raise ValueError(
                f"max_pending must be >= 1, got {self.max_pending}"
            )
        if self.retries < 0:
            raise ValueError(f"retries must be >= 0, got {self.retries}")
        if self.retry_backoff < 0:
            raise ValueError(
                f"retry_backoff must be >= 0, got {self.retry_backoff}"
            )
        if self.breaker_threshold < 1:
            raise ValueError(
                f"breaker_threshold must be >= 1, got {self.breaker_threshold}"
            )
        if self.breaker_reset_s <= 0:
            raise ValueError(
                f"breaker_reset_s must be > 0, got {self.breaker_reset_s}"
            )
        if self.batch_window_ms < 0:
            raise ValueError(
                f"batch_window_ms must be >= 0, got {self.batch_window_ms}"
            )
        if self.max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {self.max_batch}")
        if not 0.0 <= self.trace_sample_rate <= 1.0:
            raise ValueError(
                f"trace_sample_rate must be within [0, 1], got "
                f"{self.trace_sample_rate}"
            )
        if self.slow_query_ms is not None and self.slow_query_ms <= 0:
            raise ValueError(
                f"slow_query_ms must be > 0, got {self.slow_query_ms}"
            )
        if self.trace_buffer < 1:
            raise ValueError(
                f"trace_buffer must be >= 1, got {self.trace_buffer}"
            )

    def as_dict(self) -> dict:
        """A JSON-ready dump of every knob (introspection / debugging)."""
        return {
            "context_size": self.context_size,
            "alpha": self.alpha,
            "damping": self.damping,
            "iterations": self.iterations,
            "discriminator_params": dict(self.discriminator_params or {}),
            "excluded_labels": (
                sorted(self.excluded_labels)
                if self.excluded_labels is not None
                else None
            ),
            "include_inverse_labels": self.include_inverse_labels,
            "none_bucket": self.none_bucket,
            "cache_size": self.cache_size,
            "max_workers": self.max_workers,
            "executor": self.executor,
            "seed": self.seed,
            "request_timeout": self.request_timeout,
            "max_pending": self.max_pending,
            "retries": self.retries,
            "retry_backoff": self.retry_backoff,
            "breaker_threshold": self.breaker_threshold,
            "breaker_reset_s": self.breaker_reset_s,
            "snapshot_source": self.snapshot_source,
            "batch_window_ms": self.batch_window_ms,
            "max_batch": self.max_batch,
            "trace_sample_rate": self.trace_sample_rate,
            "slow_query_ms": self.slow_query_ms,
            "trace_buffer": self.trace_buffer,
            "metrics_exemplars": self.metrics_exemplars,
        }


class _PinLifecycle:
    """Drain bookkeeping for one pin: in-flight refcount + retire-once.

    The mutable companion of the otherwise-immutable :class:`_PinnedState`.
    Requests :meth:`acquire` the pin for their whole lifetime (resolution
    included — the entity index may still lazily read the pinned view)
    and :meth:`release` when done; :meth:`retire` marks the pin
    superseded and fires the drain callback as soon as — and exactly
    once — no request still references it. This is what lets
    :meth:`NCEngine.swap_snapshot` re-pin atomically while in-flight
    requests finish on the old version.
    """

    __slots__ = ("_lock", "_inflight", "_retired", "_on_drained")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._inflight = 0
        self._retired = False
        self._on_drained: "list" = []

    def acquire(self) -> None:
        """Take one in-flight reference (a request entering the pin)."""
        with self._lock:
            self._inflight += 1

    def release(self) -> None:
        """Drop one reference; fires drain callbacks on the last one."""
        with self._lock:
            self._inflight -= 1
            if self._retired and self._inflight <= 0:
                callbacks, self._on_drained = self._on_drained, []
            else:
                callbacks = []
        for callback in callbacks:
            callback()

    def retire(self, on_drained) -> None:
        """Mark the pin superseded; run ``on_drained`` at last release.

        Runs it immediately when nothing is in flight.
        """
        with self._lock:
            self._retired = True
            if self._inflight > 0:
                self._on_drained.append(on_drained)
                on_drained = None
        if on_drained is not None:
            on_drained()

    @property
    def inflight(self) -> int:
        """The current in-flight reference count (introspection only)."""
        with self._lock:
            return self._inflight

    @property
    def retired(self) -> bool:
        """Whether this pin has been superseded (swap/close happened)."""
        with self._lock:
            return self._retired


@dataclass(frozen=True)
class _PinnedState:
    """Everything one graph version's requests share, all immutable in use.

    In process-executor mode the state additionally carries the published
    shared-memory segment (``shared``) workers attach the snapshot from;
    its lifecycle follows the pin's (retired when the pin is replaced,
    unlinked once its last in-flight request completes). ``lifecycle``
    is the pin's mutable drain bookkeeping (see :class:`_PinLifecycle`).
    """

    snapshot: CompiledGraph
    selector: RandomWalkContext
    entity_index: EntityIndex
    shared: "SharedSnapshot | None" = None
    lifecycle: _PinLifecycle = field(default_factory=_PinLifecycle)


@dataclass(frozen=True)
class SwapOutcome:
    """What one :meth:`NCEngine.swap_snapshot` call did."""

    swapped: bool
    old_version: int
    new_version: int


@dataclass(frozen=True)
class SearchOutcome:
    """One served request: the result plus how it was satisfied."""

    result: FindNCResult
    cached: bool
    coalesced: bool
    graph_version: int
    elapsed_seconds: float


@dataclass(frozen=True)
class EngineStats:
    """A point-in-time snapshot of the engine counters."""

    requests: int
    cache_hits: int
    coalesced: int
    computed: int
    repins: int
    pinned_version: int | None
    inflight: int
    max_workers: int
    executor: str
    cache: CacheStats
    workers: "dict | None" = None
    #: Completed hot swaps (:meth:`NCEngine.swap_snapshot`).
    swaps: int = 0
    #: Versions fully drained and retired after being swapped out.
    drained_versions: "tuple[int, ...]" = ()
    #: Versions swapped out but still finishing in-flight requests.
    draining_versions: "tuple[int, ...]" = ()
    #: Requests whose deadline expired (504s).
    timeouts: int = 0
    #: Backend dispatches retried after a crash or stale segment.
    retries: int = 0
    #: Requests shed by admission control (503s).
    shed: int = 0
    #: Computations served by the degraded thread-local fallback.
    fallbacks: int = 0
    #: Circuit-breaker snapshot (process executor only).
    breaker: "dict | None" = None

    def as_dict(self) -> dict:
        """The JSON shape served by ``GET /stats``."""
        out = {
            "requests": self.requests,
            "cache_hits": self.cache_hits,
            "coalesced": self.coalesced,
            "computed": self.computed,
            "repins": self.repins,
            "swaps": self.swaps,
            "pinned_version": self.pinned_version,
            "drained_versions": list(self.drained_versions),
            "draining_versions": list(self.draining_versions),
            "inflight": self.inflight,
            "max_workers": self.max_workers,
            "executor": self.executor,
            "cache": self.cache.as_dict(),
            "timeouts": self.timeouts,
            "retries": self.retries,
            "shed": self.shed,
            "fallbacks": self.fallbacks,
        }
        if self.workers is not None:
            out["workers"] = self.workers
        if self.breaker is not None:
            out["breaker"] = self.breaker
        return out


class NCEngine:
    """Serve concurrent FindNC requests over one :class:`KnowledgeGraph`.

    >>> # engine = NCEngine(graph, context_size=50, max_workers=4)
    >>> # engine = NCEngine(graph, config=EngineConfig(executor="process"))
    >>> # result = engine.search(["Angela_Merkel", "Barack_Obama"])
    >>> # engine.stats().cache_hits

    Construction takes either ``config=`` (an :class:`EngineConfig`,
    the canonical form) or the individual keyword arguments below
    (the back-compat form — the engine assembles the config itself);
    mixing both raises ``ValueError``. Validation lives in
    :meth:`EngineConfig.__post_init__` either way. Every engine also
    owns a :class:`~repro.service.metrics.ServiceMetrics` bundle
    (``engine.metrics``) the HTTP server renders at ``GET /v1/metrics``.

    Parameters
    ----------
    context_size / alpha / damping / iterations:
        Defaults of the served pipeline (per-request ``context_size`` and
        ``alpha`` overrides are part of the cache key).
    discriminator_params:
        Extra :class:`MultinomialDiscriminator` keyword arguments (e.g.
        ``{"min_none_share": 0.1}``); fingerprinted into the cache key.
    cache_size / max_workers:
        LRU capacity and executor width. With ``executor="process"``,
        ``max_workers`` is also the worker-process count (the thread
        pool then only dispatches, one thread per in-flight request).
    executor:
        ``"thread"`` (default) computes on the executor threads;
        ``"process"`` computes on a shared-memory worker-process pool —
        the backend that scales *distinct*-query throughput with cores
        (see :mod:`repro.service.workers`).
    seed:
        Base seed mixed into the per-request deterministic RNG derivation.
    request_timeout:
        Default per-request deadline in seconds (``None`` = no deadline).
        Per-call ``timeout`` arguments override it; expiry raises
        :class:`~repro.errors.DeadlineExceededError` (HTTP 504).
    max_pending:
        Admission-control budget: the maximum number of *distinct*
        computations allowed in flight before :meth:`submit` sheds with
        :class:`~repro.errors.EngineSaturatedError` (HTTP 503 +
        ``Retry-After``). Cache hits and coalesced requests are always
        admitted. ``None`` = unbounded (the pre-resilience behaviour).
    retries:
        Per-request retry budget for retriable backend failures
        (:class:`~repro.service.workers.WorkerCrashError`, stale
        segments) in process mode; compute is pure, so re-dispatch is
        always safe. Crash retries back off exponentially from
        ``retry_backoff`` seconds with ±50% jitter.
    breaker_threshold / breaker_reset_s:
        Circuit breaker over the worker pool: ``breaker_threshold``
        consecutive crash failures trip it open and the engine serves
        the degraded thread-local fallback; after ``breaker_reset_s``
        one half-open probe per window decides recovery.

    ``search``/``submit``/``request`` are safe to call from many threads.
    Do not call them from inside the engine's own executor (a worker
    blocking on another request's future could exhaust the pool).
    """

    def __init__(
        self,
        graph: KnowledgeGraph,
        *,
        config: "EngineConfig | None" = None,
        **kwargs,
    ) -> None:
        if config is not None:
            if kwargs:
                raise ValueError(
                    "pass either config= or individual engine kwargs, not "
                    f"both (got config plus {sorted(kwargs)})"
                )
            if not isinstance(config, EngineConfig):
                raise TypeError(
                    f"config must be an EngineConfig, got {type(config).__name__}"
                )
        else:
            # Back-compat kwargs path: NCEngine(graph, max_workers=8, ...)
            # assembles (and validates) the config itself. Unknown kwargs
            # raise TypeError from the dataclass constructor, as before.
            config = EngineConfig(**kwargs)
        self.config = config
        context_size = config.context_size
        alpha = config.alpha
        damping = config.damping
        iterations = config.iterations
        discriminator_params = config.discriminator_params
        excluded_labels = config.excluded_labels
        include_inverse_labels = config.include_inverse_labels
        none_bucket = config.none_bucket
        cache_size = config.cache_size
        max_workers = config.max_workers
        executor = config.executor
        seed = config.seed
        request_timeout = config.request_timeout
        max_pending = config.max_pending
        retries = config.retries
        retry_backoff = config.retry_backoff
        breaker_threshold = config.breaker_threshold
        breaker_reset_s = config.breaker_reset_s
        self._graph = graph
        #: A frozen graph (``SnapshotGraphView`` over an mmapped snapshot
        #: file or an attached shm segment) never mutates: the engine pins
        #: exactly once, skips the writer-race retry loop, and — for a
        #: disk-backed view in process mode — ships workers the snapshot
        #: *path* instead of publishing a redundant shm copy.
        self._frozen = bool(getattr(graph, "frozen", False))
        self.context_size = context_size
        self.alpha = alpha
        self.damping = damping
        self.iterations = iterations
        self._discriminator_params = dict(discriminator_params or {})
        self._discriminator_fingerprint = tuple(
            sorted(self._discriminator_params.items())
        )
        self._excluded_labels = excluded_labels
        self._include_inverse_labels = include_inverse_labels
        self._none_bucket = none_bucket
        self._seed = seed
        self._started_monotonic = time.monotonic()
        self.snapshot_source = config.snapshot_source or (
            "snapshot" if self._frozen else "live-graph"
        )
        self.metrics = ServiceMetrics(exemplars=config.metrics_exemplars)
        #: Per-request span recording + the /v1/debug/traces ring buffer.
        #: The seeded RNG keeps head-sampling decisions reproducible.
        self.tracer = Tracer(
            sample_rate=config.trace_sample_rate,
            slow_query_ms=config.slow_query_ms,
            capacity=config.trace_buffer,
            seed=seed ^ 0x7ACE,
        )
        self._cache = ResultCache(
            maxsize=cache_size, on_event=self.metrics.cache_event
        )
        # In process mode with micro-batching, the thread pool only parks
        # dispatching threads while their batch members wait on workers —
        # widen it so a full batch per worker can be in flight at once
        # (otherwise the dispatch layer itself would cap batch sizes at
        # max_workers).
        dispatch_width = max_workers
        if executor == "process" and config.max_batch > 1:
            dispatch_width = max_workers * config.max_batch
        self._executor = ThreadPoolExecutor(
            max_workers=dispatch_width, thread_name_prefix="nc-query"
        )
        self.max_workers = max_workers
        self.executor = executor
        self._pool: ProcessWorkerPool | None = None
        self._pool_lock = threading.Lock()
        self._worker_config = WorkerConfig(
            damping=self.damping,
            iterations=self.iterations,
            excluded_labels=self._excluded_labels,
            include_inverse_labels=self._include_inverse_labels,
            none_bucket=self._none_bucket,
            discriminator_params=self._discriminator_fingerprint,
        )
        self._pin_lock = threading.Lock()
        self._pinned: _PinnedState | None = None
        self._flight_lock = threading.Lock()
        self._inflight: dict[tuple, Future] = {}
        self.request_timeout = request_timeout
        self._max_pending = max_pending
        self._retries = retries
        self._retry_backoff = retry_backoff
        self._retry_rng = random.Random(seed ^ 0x5EED_BACC)
        self._retry_rng_lock = threading.Lock()
        self._breaker = CircuitBreaker(
            threshold=breaker_threshold, reset_s=breaker_reset_s
        )
        self._requests = 0
        self._hits = 0
        self._coalesced = 0
        self._computed = 0
        self._repins = 0
        self._timeouts = 0
        self._backend_retries = 0
        self._shed = 0
        self._fallbacks = 0
        self._swaps = 0
        self._swap_lock = threading.Lock()
        self._drained_versions: "list[int]" = []
        self._draining: "dict[int, _PinnedState]" = {}
        self._closed = False
        self._register_gauges()

    def _register_gauges(self) -> None:
        """Scrape-time gauges over live engine state (no push per change)."""
        registry = self.metrics.registry
        registry.gauge(
            "nc_engine_inflight",
            "Distinct computations currently in flight.",
        ).set_function(lambda: len(self._inflight))
        registry.gauge(
            "nc_engine_pinned_version",
            "The graph version new requests pin (0 before the first pin).",
        ).set_function(
            lambda: (
                self._pinned.snapshot.version if self._pinned is not None else 0
            )
        )
        breaker_levels = {"closed": 0.0, "half_open": 1.0, "open": 2.0}
        registry.gauge(
            "nc_breaker_state",
            "Worker-pool circuit breaker state "
            "(0 closed, 1 half-open, 2 open).",
        ).set_function(lambda: breaker_levels.get(self._breaker.state, 2.0))
        registry.gauge(
            "nc_engine_uptime_seconds",
            "Seconds since this engine was constructed.",
        ).set_function(lambda: time.monotonic() - self._started_monotonic)
        registry.gauge(
            "nc_cache_entries",
            "Entries currently held by the result cache.",
        ).set_function(lambda: len(self._cache))

    # -- lifecycle ---------------------------------------------------------

    @property
    def graph(self) -> KnowledgeGraph:
        """The live graph this engine serves (writers may keep mutating it)."""
        return self._graph

    @property
    def cache(self) -> ResultCache:
        """The version-keyed LRU result cache."""
        return self._cache

    def close(self) -> None:
        """Shut the executor down (in-flight requests finish first).

        In process mode this also stops the worker pool and unlinks every
        shared-memory segment the engine still owns (the pinned version's
        and any parked retired ones).
        """
        self._closed = True
        self._executor.shutdown(wait=True)
        if self._pool is not None:
            self._pool.close()
            self._pool = None
        pinned = self._pinned
        if pinned is not None and pinned.shared is not None:
            pinned.shared.unlink()

    def __enter__(self) -> "NCEngine":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- pinning -----------------------------------------------------------

    def pin(self) -> _PinnedState:
        """The shared per-version state, re-pinned if the graph moved.

        Fast path is lock-free (one attribute read + version compare);
        re-pinning — compiling the snapshot, freezing the PageRank
        transition matrix, rebuilding the entity index, purging
        stale cache entries — is serialized behind a lock.
        """
        state = self._pinned
        if state is not None and state.snapshot.version == self._graph.version:
            return state
        with self._pin_lock:
            state = self._pinned
            if state is None or state.snapshot.version != self._graph.version:
                previous = state
                state = self._build_pin()
                self._pinned = state
                self._repins += 1
                self.metrics.repins.inc()
                self._cache.purge_versions(state.snapshot.version)
                if previous is not None and previous.shared is not None:
                    # Superseded segment: unlink now if idle, else when
                    # its last in-flight worker job completes. No pool
                    # yet means no job ever referenced it — unlink
                    # directly instead of spawning workers to say so.
                    if self._pool is not None:
                        self._pool.retire(previous.shared)
                    else:
                        previous.shared.unlink()
        return state

    def _worker_pool(self) -> ProcessWorkerPool:
        """The process pool (created lazily on the first process-mode pin).

        Creation is locked: with micro-batching the dispatch executor is
        wider than the worker count, so a burst of first requests reaches
        this point on many threads at once — unlocked, each would spawn
        its own pool and all but the last would leak worker processes
        (and split the dispatch counters across pools).
        """
        if self._pool is None:
            with self._pool_lock:
                if self._pool is None:
                    self._pool = ProcessWorkerPool(
                        self.max_workers,
                        batch_window_ms=self.config.batch_window_ms,
                        max_batch=self.config.max_batch,
                        on_event=self.metrics.worker_event,
                        on_batch=self.metrics.observe_worker_batch,
                    )
        return self._pool

    def _build_pin(self) -> _PinnedState:
        """Build a selector/snapshot/index triple at ONE graph version.

        A writer racing the build can tear the triple (selector frozen at
        a different version than the snapshot) or break a live-adjacency
        scan mid-iteration; retry a few times for a consistent pin. If
        writers are too hot to ever win the race, keep the last attempt —
        the selector is built *before* the snapshot, so the (newer)
        snapshot covers every node the selector can return, and the
        per-request ``covers`` checks remain the backstop.

        Frozen graphs (snapshot views) cannot race: their single pin is
        built directly, with the stored transition matrix adopted instead
        of rebuilt when the snapshot carries one.
        """
        if self._frozen:
            return self._build_frozen_pin()
        last_error: RuntimeError | None = None
        state: _PinnedState | None = None
        for _ in range(4):
            if state is not None and state.shared is not None:
                # The previous iteration's state is being discarded (its
                # snapshot raced a writer) — unlink its published segment
                # or every contended pin would leak a whole-graph copy.
                state.shared.unlink()
            version = self._graph.version
            try:
                selector = RandomWalkContext(
                    self._graph,
                    damping=self.damping,
                    iterations=self.iterations,
                    pin=True,
                )
                # Freeze the transition matrix in the parent — thread mode
                # serves PPR from it directly; process mode shares its CSR
                # triple through the segment so workers adopt ONE matrix
                # instead of each rebuilding weighted_adjacency.
                selector.warm()
                snapshot = self._graph.compiled()
            except RuntimeError as error:
                # e.g. "dictionary changed size during iteration" from a
                # writer mutating the adjacency mid-compile
                last_error = error
                continue
            state = _PinnedState(
                snapshot=snapshot,
                selector=selector,
                entity_index=EntityIndex(self._graph),
                shared=self._publish(snapshot, selector),
            )
            if snapshot.version == version:
                return state
        if state is None:
            raise RuntimeError(
                "could not pin a graph snapshot: writers kept mutating the "
                "graph during compilation"
            ) from last_error
        return state

    def _build_frozen_pin(self, graph: "KnowledgeGraph | None" = None) -> _PinnedState:
        """The one-shot pin over a frozen snapshot view (no writers, ever).

        The cold-start fast path of ``repro serve --snapshot``: the
        snapshot is already compiled (it *is* the mmapped file), and when
        the file/segment carries the frozen PPR transition CSR the
        selector adopts it — so pinning costs an entity-index build and
        nothing else. In process mode a disk-backed view is republished
        as its own *path* (workers mmap the same file); only a view with
        no path-publication falls back to an shm export.

        ``graph`` defaults to the engine's current view;
        :meth:`swap_snapshot` passes the incoming view so the replacement
        pin is fully built before the engine atomically adopts it.
        """
        if graph is None:
            graph = self._graph
        snapshot = graph.compiled()
        selector = RandomWalkContext(
            graph,
            damping=self.damping,
            iterations=self.iterations,
            pin=True,
        )
        attached = getattr(graph, "_attached", None)
        stored = attached.transition() if attached is not None else None
        if stored is not None:
            selector.warm_from(stored)
        elif self.executor == "thread":
            selector.warm()
        shared: "SharedSnapshot | None" = None
        if self.executor == "process":
            if attached is not None and hasattr(attached, "publication"):
                shared = attached.publication()
            else:  # pragma: no cover - shm-backed view served directly
                shared = self._publish(snapshot, selector)
        return _PinnedState(
            snapshot=snapshot,
            selector=selector,
            entity_index=EntityIndex(graph),
            shared=shared,
        )

    def _publish(
        self, snapshot: CompiledGraph, selector: RandomWalkContext
    ) -> "SharedSnapshot | None":
        """Export ``snapshot`` to shared memory (process mode only).

        Name tables are sliced to the snapshot's node/label counts inside
        :func:`publish_snapshot`, so a racing writer growing the graph
        cannot leak post-snapshot names into the published segment. The
        selector's frozen transition CSR rides along when its shape still
        matches the snapshot (a torn retry-exhausted pin publishes
        without it and workers rebuild, the pre-PR-4 behaviour).
        """
        if self.executor != "process":
            return None
        transition = selector.frozen_transition()
        if transition.shape[0] != snapshot.node_count:
            transition = None
        node_names = self._graph._node_names_list()  # noqa: SLF001 - fast path
        if not isinstance(node_names, list):  # lazy table: no slice support
            node_names = [node_names[i] for i in range(snapshot.node_count)]
        table = self._graph._label_table()  # noqa: SLF001 - label ids only grow
        return publish_snapshot(
            snapshot,
            node_names,
            [table.name(label_id) for label_id in range(snapshot.label_count)],
            graph_name=self._graph.name,
            transition=transition,
        )

    # -- hot swap ----------------------------------------------------------

    def swap_snapshot(
        self,
        graph: "KnowledgeGraph | str | os.PathLike[str]",
        *,
        close_drained: bool = True,
    ) -> SwapOutcome:
        """Atomically re-pin onto a newly published snapshot (hot swap).

        The serve-v2-while-v1-drains primitive: ``graph`` is a *frozen*
        snapshot view (``repro.disk.open_snapshot_view``) — or a snapshot
        file path, opened here — holding a **newer** version than the
        current pin (the registry's monotonic ids guarantee this for
        registry-published files). The engine builds the replacement pin
        off to the side, then swaps ``graph``/pin under the pin lock:

        * new requests pin the new version immediately (the version-keyed
          result cache invalidates by unreachability, exactly as for
          live-graph mutations, and stale entries are purged eagerly);
        * in-flight requests finish on the old pin — each request holds
          an in-flight reference for its whole lifetime, and the old pin
          is only *retired* (process-mode publication handed to the
          worker pool's per-segment refcount/retire machinery, the old
          view's mapping closed when ``close_drained``) once the last
          one completes. Drained versions are recorded in
          ``stats().drained_versions``.

        Swapping to the version already pinned is an idempotent no-op
        (``swapped=False``) — the ``POST /admin/reload`` handler leans on
        this. Swapping *backwards* raises ``ValueError``: version ids key
        the result cache, so re-serving an older id could resurface stale
        entries. Only snapshot-backed (frozen) engines can swap; an
        engine over a live :class:`KnowledgeGraph` re-pins through graph
        mutations instead.

        The engine takes ownership of an accepted view: it is closed when
        its version drains (``close_drained=True``, the default). On
        rejection (no-op or error) the caller keeps ownership of a view
        *they* opened; a view the engine opened from a path argument is
        closed here.
        """
        if self._closed:
            raise RuntimeError("engine is closed")
        if not self._frozen:
            raise ValueError(
                "swap_snapshot requires a snapshot-backed engine (a frozen "
                "view); live-graph engines re-pin on mutation instead"
            )
        opened_here = False
        if isinstance(graph, (str, os.PathLike)):
            from repro.disk import open_snapshot_view

            graph = open_snapshot_view(graph)
            opened_here = True
        if not bool(getattr(graph, "frozen", False)):
            raise ValueError(
                "swap target must be a frozen snapshot view "
                "(repro.disk.open_snapshot_view)"
            )
        new_version = graph.version
        with self._swap_lock:
            current = self._pinned
            current_version = (
                current.snapshot.version if current is not None else self._graph.version
            )
            if new_version == current_version:
                if opened_here:
                    graph.close()
                return SwapOutcome(
                    swapped=False,
                    old_version=current_version,
                    new_version=new_version,
                )
            if new_version < current_version:
                if opened_here:
                    graph.close()
                raise ValueError(
                    f"cannot swap from version {current_version} back to "
                    f"{new_version}: snapshot versions must be monotonic "
                    f"(they key the result cache)"
                )
            state = self._build_frozen_pin(graph)
            with self._pin_lock:
                previous = self._pinned
                old_graph = self._graph
                self._graph = graph
                self._pinned = state
                self._repins += 1
                self._swaps += 1
            self.metrics.repins.inc()
            self.metrics.swaps.inc()
            self._cache.purge_versions(new_version)
            if previous is not None:
                self._retire_pin(
                    previous, old_graph if close_drained else None
                )
        return SwapOutcome(
            swapped=True, old_version=current_version, new_version=new_version
        )

    def _retire_pin(self, previous: _PinnedState, old_graph) -> None:
        """Hand a superseded pin to the drain machinery.

        The process-mode publication goes to the worker pool's
        per-segment refcount (workers mmap'd on the old file finish their
        jobs; the segment/file handle is unlinked at last completion — a
        no-op for immutable disk files). The parent-side pin drains on
        the engine's own in-flight refcount; at the last release the old
        view's mapping is closed (when the engine owns it) and the
        version is recorded as drained.
        """
        if previous.shared is not None:
            if self._pool is not None:
                self._pool.retire(previous.shared)
            else:
                previous.shared.unlink()
        version = previous.snapshot.version
        with self._flight_lock:
            self._draining[version] = previous

        def on_drained() -> None:
            if old_graph is not None:
                old_graph.close()
            with self._flight_lock:
                self._draining.pop(version, None)
                self._drained_versions.append(version)
            self.metrics.drains.inc()

        previous.lifecycle.retire(on_drained)

    # -- request plumbing --------------------------------------------------

    def _resolve(self, state: _PinnedState, query: Sequence[NodeRef]) -> tuple[int, ...]:
        """Node ids for ``query`` (ids, exact names, or fuzzy names), sorted.

        Same resolution path as ``FindNC.resolve_query`` (shared
        :func:`resolve_node_refs`), then canonicalized by sorting + dedup
        so every spelling of the same entity set shares one cache entry
        (the pipeline is order-invariant; only ``FindNCResult.query``'s
        ordering reflects the canonical form rather than the request's).
        """
        if len(query) == 0:
            raise QueryError("the query set must not be empty")
        resolved = resolve_node_refs(
            self._graph, query, lambda: state.entity_index
        )
        return tuple(sorted(set(resolved)))

    def _rng_seed(self, key: tuple) -> int:
        """A deterministic 63-bit seed derived from the cache key + base seed."""
        material = repr((key[1:], self._seed)).encode()  # version-independent
        digest = hashlib.blake2b(material, digest_size=8).digest()
        return int.from_bytes(digest, "big") >> 1

    def _compute(self, key: tuple, query_ids: tuple[int, ...], k: int, alpha: float,
                 state: _PinnedState, deadline: "float | None" = None,
                 trace=None) -> FindNCResult:
        compute_span = None
        try:
            if deadline is not None and time.monotonic() >= deadline:
                # The executor queue ate the whole budget: cancel before
                # any work happens (the "queued-but-unstarted" path).
                raise DeadlineExceededError(
                    "request deadline expired while queued for execution"
                )
            if trace is not None:
                # Opened on the executor thread: the gap between the
                # engine.submit span's end and this start is executor
                # queueing delay, visible in the tree.
                compute_span = trace.start_span(
                    "engine.compute", backend=self.executor
                )
            started = time.perf_counter()
            if self.executor == "process":
                result = self._compute_remote(
                    key, query_ids, k, alpha, state, deadline,
                    trace=trace, trace_span=compute_span,
                )
            else:
                result = self._compute_local(key, query_ids, k, alpha, state)
            self._cache.put(key, result)
            with self._flight_lock:
                self._computed += 1
            self.metrics.computed.inc(backend=self.executor)
            self.metrics.compute_latency.observe(
                time.perf_counter() - started,
                exemplar=(
                    {"trace_id": trace.trace_id} if trace is not None else None
                ),
                backend=self.executor,
            )
            return result
        except DeadlineExceededError:
            with self._flight_lock:
                self._timeouts += 1
            self.metrics.timeouts.inc()
            raise
        finally:
            if compute_span is not None:
                compute_span.end()
            with self._flight_lock:
                self._inflight.pop(key, None)
            # The request's in-flight reference, acquired in submit() and
            # transferred to this computation: the last release of a
            # swapped-out pin triggers its retirement.
            state.lifecycle.release()

    def _compute_local(self, key: tuple, query_ids: tuple[int, ...], k: int,
                       alpha: float, state: _PinnedState) -> FindNCResult:
        """Run the pipeline on the calling executor thread (thread backend)."""
        faults.fire("engine.slow")  # chaos hook: the rule's delay applies here
        discriminator = MultinomialDiscriminator(
            alpha=alpha,
            rng=self._rng_seed(key),
            **self._discriminator_params,
        )
        finder = FindNC(
            self._graph,
            context_selector=state.selector,
            discriminator=discriminator,
            context_size=k,
            excluded_labels=self._excluded_labels,
            include_inverse_labels=self._include_inverse_labels,
            none_bucket=self._none_bucket,
            entity_index=state.entity_index,
        )
        return finder.run(query_ids, snapshot=state.snapshot)

    def _compute_remote(self, key: tuple, query_ids: tuple[int, ...], k: int,
                        alpha: float, state: _PinnedState,
                        deadline: "float | None" = None,
                        trace=None, trace_span=None) -> FindNCResult:
        """Dispatch the computation to the worker pool (process backend).

        The RNG seed derives from the cache key exactly as in the local
        path, and the worker replicates :meth:`_compute_local`'s
        construction, so both backends return identical results — which
        is also what makes the failure handling here safe:

        * a **stale segment** (retired between dispatch and the
          worker's attach — a writer or hot swap raced the request) is
          re-pinned and re-dispatched immediately, the one situation
          where a request keyed at version ``v`` is answered from
          ``v+1``; its cache entry is already unreachable to new
          requests;
        * a **worker crash** is retried on a healthy worker with
          exponential backoff + jitter, feeding the circuit breaker;
        * an exhausted retry budget or an **open breaker** falls back
          to the degraded thread-local compute — identical answers,
          degraded throughput — instead of failing the request.

        Deadline expiry is never retried: the pool already charged the
        request's whole remaining budget.
        """
        pool = self._worker_pool()
        attempts = self._retries + 1
        backoff = self._retry_backoff
        last_crash: "WorkerCrashError | None" = None
        for attempt in range(attempts):
            shared = state.shared
            if shared is None:  # pragma: no cover - process pins always publish
                raise RuntimeError("process executor is missing its shared segment")
            if not self._breaker.allow():
                break  # degraded mode: skip the pool entirely
            try:
                result = pool.run(
                    header=shared.header,
                    query_ids=query_ids,
                    context_size=k,
                    alpha=alpha,
                    rng_seed=self._rng_seed(key),
                    config=self._worker_config,
                    deadline=deadline,
                    trace=trace,
                    trace_span=trace_span,
                )
                self._breaker.record_success()
                return result
            except StaleSnapshotError:
                # Not a backend fault: no breaker, no backoff — just
                # re-pin onto the current version and go again.
                if attempt + 1 >= attempts:
                    raise
                with self._flight_lock:
                    self._backend_retries += 1
                self.metrics.backend_retries.inc()
                state = self.pin()
            except WorkerCrashError as error:
                self._breaker.record_failure(repr(error))
                log_event(
                    "worker_crash",
                    trace_id=trace.trace_id if trace is not None else None,
                    attempt=attempt + 1,
                    breaker_state=self._breaker.state,
                    error=repr(error),
                )
                if trace is not None:
                    trace.start_span(
                        "engine.crash_retry",
                        parent=trace_span,
                        attempt=attempt + 1,
                    ).end()
                last_crash = error
                if attempt + 1 >= attempts:
                    break
                with self._retry_rng_lock:
                    jitter = self._retry_rng.uniform(0.5, 1.5)
                sleep_s = backoff * jitter
                backoff *= 2
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= sleep_s:
                        # No budget left for another dispatch — surface
                        # the timeout rather than a doomed retry.
                        raise DeadlineExceededError(
                            "request deadline expired during crash-retry "
                            "backoff"
                        ) from error
                if sleep_s > 0:
                    time.sleep(sleep_s)
                with self._flight_lock:
                    self._backend_retries += 1
                self.metrics.backend_retries.inc()
        # Retry budget exhausted or breaker open: degraded local fallback.
        # Compute is pure, so the answer is byte-identical to a healthy
        # worker's; only latency/throughput degrade.
        with self._flight_lock:
            self._fallbacks += 1
        self.metrics.fallbacks.inc()
        log_event(
            "breaker_fallback",
            trace_id=trace.trace_id if trace is not None else None,
            breaker_state=self._breaker.state,
        )
        if deadline is not None and time.monotonic() >= deadline:
            raise DeadlineExceededError(
                "request deadline expired before the degraded fallback "
                "could run"
            ) from last_crash
        fallback_span = (
            trace.start_span(
                "engine.fallback", parent=trace_span, backend="thread-fallback"
            )
            if trace is not None
            else None
        )
        try:
            return self._compute_local(key, query_ids, k, alpha, state)
        finally:
            if fallback_span is not None:
                fallback_span.end()

    def submit(
        self,
        query: Sequence[NodeRef],
        *,
        context_size: int | None = None,
        alpha: float | None = None,
        timeout: "float | None" = None,
        trace=None,
    ) -> "tuple[Future, bool, bool, int]":
        """Enqueue one request; returns ``(future, cached, coalesced, version)``.

        Cache hits resolve immediately; concurrent identical requests
        share the first one's future (single-flight). Name resolution and
        cache lookup happen synchronously on the caller's thread, so bad
        queries raise here rather than inside the future.

        ``timeout`` (seconds; defaults to the engine's
        ``request_timeout``) sets the computation's deadline — carried
        into the worker pool in process mode. Admission control also
        applies here: with ``max_pending`` configured, a request that
        would start a new computation beyond the budget raises
        :class:`~repro.errors.EngineSaturatedError` instead of queueing
        (cache hits and coalesced requests are always admitted).

        ``trace`` (a :class:`~repro.service.tracing.Trace`, usually begun
        by the HTTP layer) opts the request into span recording: this
        method records ``engine.submit`` (resolution + cache/coalescing
        decision, with the ``cache=hit|miss|coalesced`` and ``version_id``
        attributes stamped on the trace root) and threads the trace down
        through the computation and — in process mode — the worker pool.
        """
        if self._closed:
            raise RuntimeError("engine is closed")
        if timeout is None:
            timeout = self.request_timeout
        elif timeout <= 0:
            raise ValueError(f"timeout must be > 0, got {timeout}")
        deadline = time.monotonic() + timeout if timeout is not None else None
        # Hold the pin for the request's whole lifetime (resolution may
        # still lazily read the pinned view's name table): a concurrent
        # swap_snapshot retires this pin only after the last holder
        # releases. Acquire-then-validate: a swap landing between pin()
        # and acquire() could have already drained (and closed) the pin
        # with zero holders, so a reference on a retired pin is given
        # back and the new pin taken instead. The reference is
        # transferred to _compute when a computation is scheduled, and
        # dropped here on every other path.
        while True:
            state = self.pin()
            state.lifecycle.acquire()
            if state is self._pinned or not state.lifecycle.retired:
                break
            state.lifecycle.release()
        transferred = False
        submit_span = (
            trace.start_span("engine.submit", executor=self.executor)
            if trace is not None
            else None
        )
        try:
            query_ids = self._resolve(state, query)
            if not state.snapshot.covers(query_ids):
                # The graph grew between pin() and resolution; retry once
                # on a fresh pin (the new snapshot covers every node).
                fresh = self.pin()
                if fresh is not state:
                    fresh.lifecycle.acquire()
                    state.lifecycle.release()
                    state = fresh
            k = context_size if context_size is not None else self.context_size
            a = alpha if alpha is not None else self.alpha
            key = (
                state.snapshot.version,
                frozenset(query_ids),
                k,
                a,
                self._discriminator_fingerprint,
            )
            self.metrics.engine_requests.inc(executor=self.executor)
            if trace is not None:
                trace.root.set(version_id=state.snapshot.version)
            with self._flight_lock:
                self._requests += 1
                cached = self._cache.get(key)
                if cached is not None:
                    self._hits += 1
                    if trace is not None:
                        trace.root.set(cache="hit")
                    future: Future = Future()
                    future.set_result(cached)
                    return future, True, False, state.snapshot.version
                existing = self._inflight.get(key)
                if existing is not None:
                    self._coalesced += 1
                    self.metrics.coalesced.inc()
                    if trace is not None:
                        trace.root.set(cache="coalesced")
                    return existing, False, True, state.snapshot.version
                if (
                    self._max_pending is not None
                    and len(self._inflight) >= self._max_pending
                ):
                    self._shed += 1
                    self.metrics.shed.inc()
                    if trace is not None:
                        trace.root.set(shed=True)
                    raise EngineSaturatedError(
                        f"engine is saturated: {len(self._inflight)} pending "
                        f"computations (max_pending={self._max_pending})",
                        retry_after=1.0,
                    )
                if trace is not None:
                    trace.root.set(cache="miss")
                future = self._executor.submit(
                    self._compute, key, query_ids, k, a, state, deadline, trace
                )
                transferred = True
                self._inflight[key] = future
                return future, False, False, state.snapshot.version
        finally:
            if submit_span is not None:
                submit_span.end()
            if not transferred:
                state.lifecycle.release()

    def request(
        self,
        query: Sequence[NodeRef],
        *,
        context_size: int | None = None,
        alpha: float | None = None,
        timeout: "float | None" = None,
        trace=None,
    ) -> SearchOutcome:
        """Serve one request synchronously, with cache/coalescing provenance.

        With a ``timeout`` (or engine ``request_timeout``), the wait for
        the computation is bounded: on expiry this raises
        :class:`~repro.errors.DeadlineExceededError` — on the thread
        backend immediately at the deadline (the pure computation cannot
        be interrupted; it finishes in the background and populates the
        cache), on the process backend within one watchdog tick (the
        pool abandons the job itself and the future carries the error).
        """
        started = time.perf_counter()
        if timeout is None:
            timeout = self.request_timeout
        deadline = time.monotonic() + timeout if timeout is not None else None
        future, cached, coalesced, version = self.submit(
            query, context_size=context_size, alpha=alpha, timeout=timeout,
            trace=trace,
        )
        if deadline is None:
            result = future.result()
        else:
            # Process mode: give the pool's own deadline machinery one
            # watchdog tick of grace to resolve the future with a
            # structured error (avoids double-counting the timeout).
            # Thread mode: nothing will interrupt the compute, so stop
            # waiting exactly at the deadline.
            grace = 0.0
            if self.executor == "process" and self._pool is not None:
                grace = self._pool._watchdog_tick  # noqa: SLF001
            try:
                result = future.result(
                    timeout=max(0.0, deadline - time.monotonic()) + grace
                )
            except FuturesTimeoutError:
                with self._flight_lock:
                    self._timeouts += 1
                self.metrics.timeouts.inc()
                raise DeadlineExceededError(
                    f"request did not complete within {timeout:.3f}s (the "
                    f"computation continues in the background and will be "
                    f"cached)",
                    timeout=timeout,
                ) from None
        return SearchOutcome(
            result=result,
            cached=cached,
            coalesced=coalesced,
            graph_version=version,
            elapsed_seconds=time.perf_counter() - started,
        )

    def search(
        self,
        query: Sequence[NodeRef],
        *,
        context_size: int | None = None,
        alpha: float | None = None,
        timeout: "float | None" = None,
    ) -> FindNCResult:
        """Serve one request synchronously; the drop-in ``FindNC.run``."""
        return self.request(
            query, context_size=context_size, alpha=alpha, timeout=timeout
        ).result

    # -- introspection -----------------------------------------------------

    @property
    def breaker(self) -> CircuitBreaker:
        """The worker-pool circuit breaker (meaningful in process mode)."""
        return self._breaker

    @property
    def uptime_s(self) -> float:
        """Seconds since this engine was constructed."""
        return time.monotonic() - self._started_monotonic

    @property
    def pinned_version(self) -> "int | None":
        """The graph version new requests pin (None before the first pin)."""
        pinned = self._pinned
        return pinned.snapshot.version if pinned is not None else None

    def health(self) -> dict:
        """Liveness summary for ``/healthz``: ``ok`` or ``degraded``.

        ``degraded`` means the engine is still answering — cached
        results, coalesced flights, and the thread-local fallback all
        work — but the process backend is bypassed because its circuit
        breaker is not closed. The ``reason`` field says why.
        """
        if self.executor == "process" and self._breaker.state != "closed":
            return {
                "status": "degraded",
                "reason": (
                    f"worker-pool circuit breaker is {self._breaker.state}: "
                    f"{self._breaker.reason}"
                ),
            }
        return {"status": "ok"}

    def revive_workers(self) -> int:
        """Respawn dead worker slots and reset the breaker to closed.

        The operator recovery action (after a crash storm's cause is
        fixed): brings suppressed slots back immediately and lets
        traffic flow to the pool again. Returns the number of slots
        revived; a no-op (0) without a process pool.
        """
        pool = self._pool
        revived = pool.revive() if pool is not None else 0
        self._breaker.record_success()
        return revived

    def stats(self) -> EngineStats:
        """A point-in-time snapshot of the engine (and worker-pool) counters."""
        with self._flight_lock:
            requests = self._requests
            hits = self._hits
            coalesced = self._coalesced
            computed = self._computed
            inflight = len(self._inflight)
            drained = tuple(self._drained_versions)
            draining = tuple(sorted(self._draining))
            timeouts = self._timeouts
            retries = self._backend_retries
            shed = self._shed
            fallbacks = self._fallbacks
        pinned = self._pinned
        pool = self._pool
        return EngineStats(
            requests=requests,
            cache_hits=hits,
            coalesced=coalesced,
            computed=computed,
            repins=self._repins,
            pinned_version=pinned.snapshot.version if pinned else None,
            inflight=inflight,
            max_workers=self.max_workers,
            executor=self.executor,
            cache=self._cache.stats(),
            workers=pool.stats().as_dict() if pool is not None else None,
            swaps=self._swaps,
            drained_versions=drained,
            draining_versions=draining,
            timeouts=timeouts,
            retries=retries,
            shed=shed,
            fallbacks=fallbacks,
            breaker=(
                self._breaker.as_dict() if self.executor == "process" else None
            ),
        )
