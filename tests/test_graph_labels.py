"""Unit tests for repro.graph.labels."""

import pytest

from repro.graph.labels import (
    LabelTable,
    base_label,
    inverse_label,
    is_inverse_label,
)


class TestInverseLabel:
    def test_inverse_adds_suffix(self):
        assert inverse_label("hasChild") == "hasChild_inv"

    def test_inverse_is_involution(self):
        assert inverse_label(inverse_label("hasChild")) == "hasChild"

    def test_is_inverse(self):
        assert is_inverse_label("hasChild_inv")
        assert not is_inverse_label("hasChild")

    def test_base_label(self):
        assert base_label("hasChild_inv") == "hasChild"
        assert base_label("hasChild") == "hasChild"

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            inverse_label("")


class TestLabelTable:
    def test_intern_dense_ids(self):
        table = LabelTable()
        assert table.intern("a") == 0
        assert table.intern("b") == 1
        assert table.intern("a") == 0
        assert len(table) == 2

    def test_name_inverts_intern(self):
        table = LabelTable()
        labels = ["type", "actedIn", "hasChild"]
        ids = [table.intern(label) for label in labels]
        assert [table.name(i) for i in ids] == labels

    def test_lookup_unknown(self):
        assert LabelTable().lookup("nope") is None

    def test_name_out_of_range(self):
        table = LabelTable()
        with pytest.raises(IndexError):
            table.name(0)
        with pytest.raises(IndexError):
            table.name(-1)

    def test_contains_and_iter(self):
        table = LabelTable()
        table.intern("x")
        assert "x" in table
        assert "y" not in table
        assert list(table) == ["x"]
