"""Personalized PageRank (Equation 2) via sparse power iteration.

``p = c * A~ * p + (1 - c) * v`` with ``A~`` the column-stochastic matrix of
:func:`repro.graph.matrix.transition_matrix` and ``v`` the personalization
vector. The experiments of the paper run power iteration ("instead of the
matrix multiplication we used the more scalable power iteration method",
10 iterations); we support both a fixed iteration count and a convergence
tolerance.

On the damping factor: Section 3.1 states 0.8 while Section 4 states 0.2.
With this equation's convention (``c`` multiplies the *walk* term), 0.8 is
the standard reading, so 0.8 is the default; the parameter is exposed for
ablation.

Paper cross-reference (Mottin et al., EDBT 2018):

* **Equation 1** (the weighted adjacency ``A_ij = 1 - |E_l|/|E|``) —
  built in :func:`repro.graph.matrix.weighted_adjacency` from the
  compiled snapshot's precomputed ``label_weights``.
* **Equation 2 / Section 3.1, RandomWalk baseline** — "we compute the
  PageRank starting from each node in the query ... by setting v_n = 1
  for each n in Q, individually": :meth:`PersonalizedPageRank.scores_per_node`
  (one personalization column per query node, summed); the scipy
  backend batches the columns into :func:`power_iteration_batch`.
* **"the more scalable power iteration method", 10 iterations** —
  :func:`power_iteration` with ``iterations=10`` as the default.
* **Figure 5 cost profile** — :func:`power_iteration_python` keeps the
  interpreted per-query-node sweep so the runtime comparison against
  ContextRW pays the same per-edge interpreter costs as the paper's
  Java/Jena implementation.
"""

from __future__ import annotations

import numpy as np
from scipy import sparse

from repro.graph.matrix import (
    _label_weight_array,
    personalization_vector,
    transition_matrix,
    weighted_adjacency,
)
from repro.graph.model import KnowledgeGraph
from repro.walk import kernels


def _dangling_columns(transition: sparse.csr_matrix) -> np.ndarray:
    """Indices of the dangling nodes (zero columns of ``T``).

    The dangling leak of one step is the mass currently sitting on these
    nodes: ``sum(T @ p) = sum(p) - sum(p[dangling])`` because every other
    column of the (column-stochastic) transition transports its mass.
    Summing ``p`` over this usually-small index set replaces a full pass
    over the iterate — the dominant non-matmul cost of the batched sweep.
    """
    return np.flatnonzero(np.asarray(transition.sum(axis=0)).ravel() == 0.0)


def _damped_transition(
    transition: sparse.csr_matrix, damping: float
) -> sparse.csr_matrix:
    """``damping * T`` as a CSR sharing ``T``'s index arrays.

    Folding the damping factor into the matrix data once per call turns
    the per-iteration update into ``p <- (cT) @ p + teleport`` — one
    sparse multiply and one dense add — instead of scaling the dense
    ``(n, q)`` iterate by ``c`` every step. Only the data vector is
    copied (one pass over ``nnz``); ``indices``/``indptr`` are shared.
    """
    return sparse.csr_matrix(
        (transition.data * damping, transition.indices, transition.indptr),
        shape=transition.shape,
        copy=False,
    )


def power_iteration(
    transition: sparse.csr_matrix,
    personalization: np.ndarray,
    *,
    damping: float = 0.8,
    iterations: int = 10,
    tolerance: float | None = None,
) -> np.ndarray:
    """Iterate ``p <- c*T*p + (1-c)*v`` from ``p = v``.

    Mass lost through dangling nodes (zero columns of ``T``) is re-injected
    through ``v``, the standard correction keeping ``p`` a distribution; the
    leak is measured directly as ``p``'s mass on the dangling set (see
    :func:`_dangling_columns`). When ``tolerance`` is given, iteration
    stops early once the L1 change falls below it.
    """
    if not 0.0 <= damping <= 1.0:
        raise ValueError(f"damping must be in [0, 1], got {damping}")
    if iterations < 1:
        raise ValueError(f"iterations must be >= 1, got {iterations}")
    v = np.asarray(personalization, dtype=np.float64)
    if v.ndim != 1 or v.shape[0] != transition.shape[0]:
        raise ValueError("personalization vector shape mismatch")
    total = v.sum()
    if total <= 0:
        raise ValueError("personalization vector must have positive mass")
    if total != 1.0:  # x / 1.0 == x bitwise: skip the identity pass
        v = v / total
    dangling = _dangling_columns(transition)
    walk = _damped_transition(transition, damping)
    teleport = (1.0 - damping) * v  # loop-invariant
    v_damped = damping * v if dangling.size else None
    # Every step rebinds ``p`` to the fresh matmul output, never writes
    # into it, so the personalization vector needs no defensive copy.
    p = v
    for _ in range(iterations):
        new_p = walk @ p
        if dangling.size:  # dangling leak: p's mass on the dangling set
            new_p += v_damped * p[dangling].sum()
        new_p += teleport
        if tolerance is not None and np.abs(new_p - p).sum() < tolerance:
            p = new_p
            break
        p = new_p
    return p


def _column_sums(matrix: np.ndarray) -> np.ndarray:
    """Per-column sums whose bit pattern does not depend on matrix width.

    Whole-matrix reductions (``sum(axis=0)``, ``ones @ M``, ``einsum``) pick
    their pairwise-summation blocking from the memory layout, so a column's
    sum changes at the last ulp depending on how many other columns ride
    along in the same C-order matrix. Reducing each column from a contiguous
    1-D copy makes the blocking a function of ``n`` alone — which is what
    lets cross-request micro-batches (extra columns appended by other
    queries) stay bit-identical to a solo run of the same columns.
    """
    out = np.empty(matrix.shape[1], dtype=np.float64)
    for j in range(matrix.shape[1]):
        out[j] = np.ascontiguousarray(matrix[:, j]).sum()
    return out


def power_iteration_batch(
    transition: sparse.csr_matrix,
    personalizations: np.ndarray,
    *,
    damping: float = 0.8,
    iterations: int = 10,
    tolerance: float | None = None,
) -> np.ndarray:
    """Multi-column power iteration: one ``T @ P`` per step for all columns.

    ``personalizations`` is ``(n, q)`` — one personalization vector per
    column. Returns the ``(n, q)`` matrix of PPR vectors, each column equal
    (within float noise) to :func:`power_iteration` run on it alone: the
    dangling-mass correction is applied per column, and with ``tolerance``
    each column freezes at its own convergence step, exactly as the
    single-column loop would have stopped there.

    One sparse mat-mat multiply per step replaces ``q`` mat-vec sweeps —
    the batching behind :meth:`PersonalizedPageRank.scores_per_node`.
    """
    if not 0.0 <= damping <= 1.0:
        raise ValueError(f"damping must be in [0, 1], got {damping}")
    if iterations < 1:
        raise ValueError(f"iterations must be >= 1, got {iterations}")
    v = np.asarray(personalizations, dtype=np.float64)
    if v.ndim != 2 or v.shape[0] != transition.shape[0]:
        raise ValueError("personalization matrix shape mismatch")
    restart_rows, restart_cols = np.nonzero(v)
    width = v.shape[1]
    column_nnz = np.bincount(restart_cols, minlength=width)
    sparse_restarts = int(column_nnz.max(initial=0)) <= 2
    if sparse_restarts:
        # Personalization columns are almost always one or two restart
        # nodes in a sea of exact zeros. Adding zero is exact and a sum
        # of <= 2 nonzeros has one order, so accumulating just the
        # nonzero entries lands on the same bits as the per-column
        # pairwise sums — skipping _column_sums's per-column strided
        # copies (np.add.at visits entries in row-major = in-column
        # order).
        totals = np.zeros(width, dtype=np.float64)
        np.add.at(totals, restart_cols, v[restart_rows, restart_cols])
    else:
        totals = _column_sums(v)
    if np.any(totals <= 0):
        raise ValueError("every personalization column must have positive mass")
    if not np.all(totals == 1.0):  # x / 1.0 == x bitwise: skip the pass
        v = v / totals
    dangling = _dangling_columns(transition)
    walk = _damped_transition(transition, damping)
    # No iteration writes into ``p`` (each step binds it to the fresh
    # matmat output), so the initial personalizations need no copy.
    p = v
    if sparse_restarts and tolerance is None and not dangling.size:
        # The serving path: no dangling mass to re-inject, no per-column
        # convergence bookkeeping, and a teleport matrix that is zero
        # everywhere but the restart entries. Every walk value is
        # non-negative (probabilities), so adding teleport's zeros is the
        # identity bit-for-bit — scattering just the restart entries
        # replaces a dense (n, q) read-add-write per step with a handful
        # of element updates, leaving ``T @ P`` as the whole iteration
        # (the dense teleport matrix is never materialised).
        values = (1.0 - damping) * v[restart_rows, restart_cols]
        for _ in range(iterations):
            walked = kernels.csr_matmat(walk, p)
            walked[restart_rows, restart_cols] += values
            p = walked
        return p
    frozen = np.zeros(width, dtype=bool)
    teleport = (1.0 - damping) * v  # loop-invariant
    v_damped = damping * v if dangling.size else None
    scratch = np.empty_like(v)
    for _ in range(iterations):
        walked = kernels.csr_matmat(walk, p)
        if dangling.size:
            # Dangling leak per column: p's mass on the dangling set. The
            # (d, q) gather keeps the reduction shape a function of d
            # alone, so each column's sum is bit-identical to the width-1
            # run of the same column — no full-matrix reduction needed.
            np.multiply(v_damped, _column_sums(p[dangling]), out=scratch)
            walked += scratch
        walked += teleport
        if tolerance is not None:
            if frozen.any():
                walked[:, frozen] = p[:, frozen]
            np.subtract(walked, p, out=scratch)
            np.abs(scratch, out=scratch)
            deltas = _column_sums(scratch)
            p = walked
            frozen |= deltas < tolerance
            if frozen.all():
                break
        else:
            p = walked
    return p


def personalized_pagerank(
    graph: KnowledgeGraph,
    nodes: "list[int] | tuple[int, ...]",
    *,
    damping: float = 0.8,
    iterations: int = 10,
    tolerance: float | None = None,
) -> np.ndarray:
    """One-shot PPR personalized on ``nodes`` (uniform restart over them)."""
    transition = transition_matrix(graph)
    v = personalization_vector(graph, nodes)
    return power_iteration(
        transition, v, damping=damping, iterations=iterations, tolerance=tolerance
    )


def power_iteration_python(
    graph: KnowledgeGraph,
    personalization: np.ndarray,
    *,
    damping: float = 0.8,
    iterations: int = 10,
    statistics=None,
) -> np.ndarray:
    """Pure-Python power iteration sweeping the adjacency lists directly.

    Functionally equivalent to :func:`power_iteration` (same fixed point up
    to float noise) but with the cost profile of the paper's Java/Jena
    implementation: every iteration touches every edge with interpreted
    code, no vectorization. The Figure-5 runtime comparison uses this
    backend so that both algorithms pay interpreter-level costs (see
    DESIGN.md / EXPERIMENTS.md); library users get the scipy backend by
    default.
    """
    if not 0.0 <= damping <= 1.0:
        raise ValueError(f"damping must be in [0, 1], got {damping}")
    n = graph.node_count
    v = np.asarray(personalization, dtype=np.float64)
    if v.shape != (n,):
        raise ValueError("personalization vector shape mismatch")
    total = v.sum()
    if total <= 0:
        raise ValueError("personalization vector must have positive mass")
    v = v / total
    adjacency = graph._out_adjacency()  # noqa: SLF001 - internal fast path
    # Per-label weights and per-node out-weight normalizers come from the
    # version-keyed compiled snapshot — computed once per graph version
    # instead of re-derived on every call (one full adjacency pass saved
    # per query node). An explicitly passed ``statistics`` overrides the
    # snapshot's Equation-1 weights.
    compiled = graph._compiled()  # noqa: SLF001 - internal fast path
    weight_arr = _label_weight_array(graph, statistics)
    if statistics is not None:
        out_weight = np.bincount(
            compiled.sources,
            weights=weight_arr[compiled.label_ids],
            minlength=n,
        ).tolist()
    else:
        out_weight = compiled.out_weight.tolist()
    weight_of_label_id = weight_arr.tolist()
    p = v.copy()
    for _ in range(iterations):
        new_p = np.zeros(n, dtype=np.float64)
        for node in range(n):
            mass = p[node]
            if mass <= 0.0:
                continue
            denom = out_weight[node]
            if denom <= 0.0:
                continue  # dangling: handled by leak re-injection below
            scale = mass / denom
            for label_id, targets in adjacency[node].items():
                w = weight_of_label_id[label_id] * scale
                for target in targets:
                    new_p[target] += w
        lost = 1.0 - new_p.sum()
        p = damping * (new_p + lost * v) + (1.0 - damping) * v
    return p


def _personalization_columns(n: int, nodes: "list[int] | tuple[int, ...]") -> np.ndarray:
    """``(n, len(nodes))`` — one unit personalization column per node.

    The shared validate-and-build step of :meth:`PersonalizedPageRank.scores`
    / :meth:`~PersonalizedPageRank.scores_per_node`. ``n`` comes from the
    (possibly pinned) transition matrix, not the live graph, so pinned
    runners stay within the pinned node set.
    """
    if len(nodes) == 0:
        raise ValueError("need at least one personalization node")
    v = np.zeros((n, len(nodes)), dtype=np.float64)
    for column, node in enumerate(nodes):
        if not 0 <= node < n:
            raise ValueError(f"node id out of range: {node}")
        v[node, column] = 1.0
    return v


def _top_order(scores: np.ndarray, m: int) -> np.ndarray:
    """Indices of (at least) the ``m`` largest scores, best first.

    An ``argpartition`` prefilter replaces the full ``argsort`` of the old
    top-k path: only the candidate set (the ``m + 1`` largest values plus
    any ties at the boundary) is actually sorted. Ordering is identical to
    ``np.argsort(-scores, kind="stable")`` truncated to those candidates —
    ties keep ascending-index order — so consumers that stop after ``m``
    positive entries see exactly the same sequence.
    """
    n = scores.shape[0]
    if m >= n:
        return np.argsort(-scores, kind="stable")
    top = np.argpartition(-scores, m)[: m + 1]
    floor = scores[top].min()
    if floor > 0:
        # Include every tie at the boundary so tie-breaking matches the
        # stable full sort instead of argpartition's arbitrary choice.
        candidates = np.nonzero(scores >= floor)[0]
    else:
        # The m+1 largest values already reach <= 0, so all positive
        # scores are candidates (consumers ignore the rest anyway).
        candidates = np.nonzero(scores > 0)[0]
    return candidates[np.argsort(-scores[candidates], kind="stable")]


def _rank_top_k(
    scores: np.ndarray, k: int, excluded: "set[int] | frozenset[int]"
) -> list[tuple[int, float]]:
    """Rank ``scores`` into the top-``k`` list, skipping ``excluded``.

    Shared by :meth:`PersonalizedPageRank.top_k` and
    :meth:`PersonalizedPageRank.top_k_many` so the solo and micro-batched
    paths rank through literally the same code.
    """
    order = _top_order(scores, k + len(excluded))
    out: list[tuple[int, float]] = []
    for node in order:
        node = int(node)
        if node in excluded:
            continue
        if scores[node] <= 0:
            break
        out.append((node, float(scores[node])))
        if len(out) == k:
            break
    return out


class PersonalizedPageRank:
    """Reusable PPR runner caching the transition matrix per graph version.

    The RandomWalk baseline of the paper runs one PPR per query node; this
    class amortizes the (dominant) matrix construction across those runs.
    """

    def __init__(
        self,
        graph: KnowledgeGraph,
        *,
        damping: float = 0.8,
        iterations: int = 10,
        tolerance: float | None = None,
        backend: str = "scipy",
        pin: bool = False,
    ) -> None:
        if backend not in ("scipy", "python"):
            raise ValueError(f"backend must be 'scipy' or 'python', got {backend!r}")
        self._graph = graph
        self.damping = damping
        self.iterations = iterations
        self.tolerance = tolerance
        self.backend = backend
        #: With ``pin=True`` the transition matrix is built once (at the
        #: graph version current on first use) and never invalidated — the
        #: query service pins one runner per graph version so in-flight
        #: requests keep a consistent matrix while writers mutate the graph.
        self.pin = pin
        self._transition: sparse.csr_matrix | None = None
        self._version = -1

    @property
    def graph(self) -> KnowledgeGraph:
        return self._graph

    def transition(self) -> sparse.csr_matrix:
        if self._transition is not None and (
            self.pin or self._graph.version == self._version
        ):
            return self._transition
        adjacency = weighted_adjacency(self._graph)
        self._transition = transition_matrix(self._graph, adjacency=adjacency)
        self._version = self._graph.version
        return self._transition

    def adopt_transition(self, matrix: sparse.csr_matrix) -> None:
        """Install a prebuilt frozen transition matrix (requires ``pin=True``).

        The zero-build warm path: the query service publishes the pinned
        transition's CSR triple through shared memory and the disk store
        persists it in the snapshot file, so workers and cold-started
        servers hand the matrix in here instead of paying a
        :func:`~repro.graph.matrix.weighted_adjacency` rebuild. Only a
        pinned runner may adopt — an unpinned one would keep serving the
        adopted matrix across graph mutations.
        """
        if not self.pin:
            raise ValueError("adopt_transition requires a pinned runner (pin=True)")
        n = self._graph.node_count
        if matrix.shape != (n, n):
            raise ValueError(
                f"transition matrix shape {matrix.shape} does not match the "
                f"graph's {n} nodes"
            )
        self._transition = matrix
        self._version = self._graph.version

    def scores(self, nodes: "list[int] | tuple[int, ...]") -> np.ndarray:
        """PPR vector personalized on ``nodes`` jointly."""
        if self.backend == "python":
            v = personalization_vector(self._graph, list(nodes))
            return power_iteration_python(
                self._graph, v, damping=self.damping, iterations=self.iterations
            )
        transition = self.transition()
        v = _personalization_columns(transition.shape[0], list(nodes)).sum(axis=1)
        return power_iteration(
            transition,
            v,
            damping=self.damping,
            iterations=self.iterations,
            tolerance=self.tolerance,
        )

    def scores_per_node(self, nodes: "list[int] | tuple[int, ...]") -> np.ndarray:
        """Sum of per-query-node PPR vectors (the paper's protocol).

        "We compute the PageRank starting from each node in the query ...
        by setting v_n = 1 for each n in Q, individually." The per-node
        vectors are summed into one ranking (the combination rule is left
        unspecified in the paper; summation is order-invariant and reduces
        to the single-node case for |Q| = 1).

        On the scipy backend the per-node runs execute as one multi-column
        power iteration (:func:`power_iteration_batch`): a single ``T @ P``
        sweep per step regardless of |Q|. The python backend keeps the
        per-node loop — it exists to model the paper's per-query-node
        interpreted cost profile (Figure 5).
        """
        if len(nodes) == 0:
            raise ValueError("need at least one personalization node")
        if self.backend == "python":
            total = np.zeros(self._graph.node_count, dtype=np.float64)
            for node in nodes:
                total += self.scores([node])
            return total
        # As in :meth:`scores`, the pinned matrix defines the node space.
        transition = self.transition()
        v = _personalization_columns(transition.shape[0], list(nodes))
        p = power_iteration_batch(
            transition,
            v,
            damping=self.damping,
            iterations=self.iterations,
            tolerance=self.tolerance,
        )
        return p.sum(axis=1)

    def top_k(
        self,
        nodes: "list[int] | tuple[int, ...]",
        k: int,
        *,
        exclude: "set[int] | frozenset[int] | None" = None,
        per_node: bool = True,
    ) -> list[tuple[int, float]]:
        """The ``k`` highest-scoring nodes, excluding ``exclude`` (usually Q)."""
        if k < 0:
            raise ValueError(f"k must be >= 0, got {k}")
        if k == 0:
            return []
        scores = self.scores_per_node(nodes) if per_node else self.scores(nodes)
        excluded = exclude if exclude is not None else set(nodes)
        return _rank_top_k(scores, k, excluded)

    def top_k_many(
        self,
        node_groups: "list[list[int] | tuple[int, ...]]",
        ks: "list[int]",
        *,
        excludes: "list[set[int] | frozenset[int] | None] | None" = None,
    ) -> list[list[tuple[int, float]]]:
        """Batched :meth:`top_k`: one shared power iteration for many queries.

        Concatenates the per-query-node personalization columns of every
        group into a single :func:`power_iteration_batch` call — one sparse
        ``T @ P`` sweep per step regardless of how many queries ride along —
        then ranks each group independently through :func:`_rank_top_k`.
        On the scipy backend the result is bit-identical to calling
        :meth:`top_k` once per group (see :func:`_column_sums` for why the
        extra columns cannot perturb a member's scores).
        """
        if len(ks) != len(node_groups):
            raise ValueError("node_groups and ks must have the same length")
        if excludes is None:
            excludes = [None] * len(node_groups)
        elif len(excludes) != len(node_groups):
            raise ValueError("node_groups and excludes must have the same length")
        for k in ks:
            if k < 0:
                raise ValueError(f"k must be >= 0, got {k}")
        if not node_groups:
            return []
        if self.backend == "python":
            return [
                self.top_k(group, k, exclude=exclude)
                for group, k, exclude in zip(node_groups, ks, excludes)
            ]
        transition = self.transition()
        n = transition.shape[0]
        # k == 0 groups contribute no columns: top_k answers them without
        # computing scores, and the batch must not pay for them either.
        spans: list[tuple[int, int] | None] = []
        pooled_nodes: list[tuple[int, list[int]]] = []
        offset = 0
        for group, k in zip(node_groups, ks):
            if k == 0:
                spans.append(None)
                continue
            nodes = list(group)
            if len(nodes) == 0:
                raise ValueError("need at least one personalization node")
            pooled_nodes.append((offset, nodes))
            spans.append((offset, offset + len(nodes)))
            offset += len(nodes)
        if offset:
            # Fill the pooled personalization matrix directly — same
            # entries as per-group _personalization_columns stacked with
            # np.concatenate, without materialising the copies twice.
            pooled = np.zeros((n, offset), dtype=np.float64)
            for start, nodes in pooled_nodes:
                for column, node in enumerate(nodes):
                    if not 0 <= node < n:
                        raise ValueError(f"node id out of range: {node}")
                    pooled[node, start + column] = 1.0
            p = power_iteration_batch(
                transition,
                pooled,
                damping=self.damping,
                iterations=self.iterations,
                tolerance=self.tolerance,
            )
        results: list[list[tuple[int, float]]] = []
        for span, group, k, exclude in zip(spans, node_groups, ks, excludes):
            if span is None:
                results.append([])
                continue
            lo, hi = span
            if hi - lo == 1:
                # Row sums of an (n, 1) matrix are the column itself, so
                # the single-node case (the common service query) skips
                # the reduction pass entirely — bit pattern unchanged.
                scores = np.ascontiguousarray(p[:, lo])
            elif hi - lo == 2:
                # Two addends have a single summation order, so the
                # binary add equals the row-sum bit-for-bit — and a
                # strided binary add runs ~4x faster than numpy's
                # strided reduction over the same cache lines.
                scores = p[:, lo] + p[:, lo + 1]
            elif hi - lo <= 8:
                # Up to 8 addends sit below numpy's pairwise block size,
                # so reducing the strided view row-by-row adds the same
                # elements in the same order as a contiguous copy would —
                # without materialising the copy (whose strided gather
                # from the wide batch matrix costs a cache line per
                # element, a batch-only penalty a solo run never pays).
                scores = p[:, lo:hi].sum(axis=1)
            else:
                # The contiguous copy makes the row-sum blocking match a
                # solo run's C-contiguous (n, |Q|) result exactly.
                scores = np.ascontiguousarray(p[:, lo:hi]).sum(axis=1)
            excluded = exclude if exclude is not None else set(group)
            results.append(_rank_top_k(scores, k, excluded))
        return results
