"""Simulated crowdsourced ground truth (the paper's CrowdFlower study).

The paper "generated the first ground for evaluation by crowdsourc[ing]
contexts for given query nodes": 34 workers per query set each provided a
ranked list of 15 related entities; entities mentioned only once were
dropped, leaving 36-76 entities per query.

Offline, this module simulates that protocol:

1. A **latent relevance** score is derived from the graph for every
   candidate person: type overlap with the query, neighbourhood overlap,
   and a popularity prior (degree). This is the "what a human would call
   related" signal.
2. **Workers** are Plackett-Luce samplers over the relevance scores with
   per-worker temperature, plus a distraction rate (humans occasionally
   name popular but off-topic entities).
3. **Aggregation** keeps entities mentioned at least ``min_mentions``
   times, ranked by mention count.

The simulation is deterministic under a fixed seed, so F1 curves are
reproducible.
"""

from __future__ import annotations

import math
from collections import Counter
from collections.abc import Sequence
from dataclasses import dataclass

from repro.graph.hierarchy import TypeHierarchy
from repro.graph.labels import TYPE_LABEL
from repro.graph.model import KnowledgeGraph, NodeRef
from repro.util.rng import RandomSource, derive_rng, ensure_rng


@dataclass(frozen=True)
class GroundTruth:
    """The aggregated crowd answer for one query."""

    query: tuple[int, ...]
    entities: frozenset[int]
    ranked: tuple[int, ...]
    mention_counts: dict[int, int]
    workers: int

    def __len__(self) -> int:
        return len(self.entities)

    def names(self, graph: KnowledgeGraph) -> list[str]:
        return [graph.node_name(n) for n in self.ranked]


@dataclass(frozen=True)
class CrowdConfig:
    """The study protocol parameters.

    ``workers`` / ``entities_per_worker`` / ``min_mentions`` follow the
    paper's protocol (34 workers x 15 entities, singleton mentions
    dropped). The relevance weights encode how humans pick "related
    entities": predominantly same-profession (type) and famous
    (popularity); *graph adjacency* plays a minor role — crowd workers
    name celebrities of the same domain, not the query's co-stars'
    spouses. Keeping the neighbour weight low is what makes the ground
    truth an independent target rather than an echo of either algorithm.
    """

    workers: int = 34
    entities_per_worker: int = 15
    min_mentions: int = 2
    temperature_range: tuple[float, float] = (0.6, 1.6)
    distraction_rate: float = 0.22
    type_weight: float = 3.0
    neighbor_weight: float = 0.4
    popularity_weight: float = 0.6


class CrowdSimulator:
    """Simulates the crowdsourcing study over a knowledge graph."""

    #: Person-type fallbacks tried in order: the YAGO-style ``person``
    #: super-type, then the LinkedMDB role types.
    DEFAULT_PERSON_TYPES: tuple[str, ...] = (
        "person",
        "film_actor",
        "film_director",
        "film_producer",
        "film_writer",
        "film_editor",
        "film_music_contributor",
    )

    def __init__(
        self,
        graph: KnowledgeGraph,
        *,
        config: CrowdConfig | None = None,
        rng: RandomSource = None,
        person_types: Sequence[str] | None = None,
    ) -> None:
        self._graph = graph
        self.config = config or CrowdConfig()
        self._rng = ensure_rng(rng)
        self._hierarchy = TypeHierarchy(graph)
        self._person_types = tuple(
            person_types if person_types is not None else self.DEFAULT_PERSON_TYPES
        )

    # -- candidate pool -------------------------------------------------------

    def candidate_pool(self, query: Sequence[int]) -> list[int]:
        """People (nodes under any configured person type) minus the query.

        Crowd workers name *people* related to the query people; films,
        genres or attribute values never appear in their lists. If none of
        the person types exists in the graph, every typed node qualifies
        (custom-domain graphs, e.g. the product-catalog example).
        """
        graph = self._graph
        query_set = set(query)
        pool: set[int] = set()
        for type_name in self._person_types:
            if graph.has_node(type_name):
                pool |= self._hierarchy.instances(type_name, transitive=True)
        if not pool:
            pool = {
                node
                for node in graph.nodes()
                if any(True for _ in graph.neighbors(node, TYPE_LABEL))
            }
        return sorted(pool - query_set)

    # -- latent relevance -------------------------------------------------------

    def relevance_scores(self, query: Sequence[int]) -> dict[int, float]:
        """Latent human-relevance score for every candidate."""
        graph = self._graph
        config = self.config
        query_list = [graph.node_id(q) for q in query]
        query_types = Counter()
        for q in query_list:
            for type_name in self._hierarchy.types_of(q, transitive=False):
                query_types[type_name] += 1
        query_neighbors: list[set[int]] = [
            set(graph.neighbors(q, direction="out")) for q in query_list
        ]
        scores: dict[int, float] = {}
        for node in self.candidate_pool(query_list):
            node_types = self._hierarchy.types_of(node, transitive=False)
            # Type overlap: how many query members share each of my types.
            type_score = sum(query_types[t] for t in node_types) / max(
                len(query_list), 1
            )
            neighbors = set(graph.neighbors(node, direction="out"))
            neighbor_score = sum(
                1.0 for q_nb in query_neighbors if neighbors & q_nb
            ) / max(len(query_list), 1)
            popularity = math.log1p(graph.out_degree(node))
            score = (
                config.type_weight * type_score
                + config.neighbor_weight * neighbor_score
                + config.popularity_weight * popularity
            )
            if score > 0:
                scores[node] = score
        return scores

    # -- workers ------------------------------------------------------------------

    def _worker_list(
        self, rng, scores: dict[int, float], pool: list[int]
    ) -> list[int]:
        """One worker's ranked list (Plackett-Luce without replacement)."""
        config = self.config
        temperature = rng.uniform(*config.temperature_range)
        remaining = dict(scores)
        picks: list[int] = []
        max_score = max(remaining.values(), default=1.0)
        picked_set: set[int] = set()
        while len(picks) < config.entities_per_worker and (remaining or pool):
            if not remaining and picked_set.issuperset(pool):
                break  # nothing left to mention
            if pool and (not remaining or rng.random() < config.distraction_rate):
                candidate = pool[rng.randrange(len(pool))]
                if candidate not in picked_set:
                    picks.append(candidate)
                    picked_set.add(candidate)
                    remaining.pop(candidate, None)
                continue
            nodes = list(remaining.keys())
            weights = [
                math.exp((remaining[n] - max_score) / temperature) for n in nodes
            ]
            chosen = rng.choices(nodes, weights=weights, k=1)[0]
            picks.append(chosen)
            picked_set.add(chosen)
            del remaining[chosen]
        return picks

    def simulate(self, query: Sequence[NodeRef]) -> GroundTruth:
        """Run the full study for ``query`` and aggregate the ground truth."""
        graph = self._graph
        query_ids = tuple(graph.node_id(q) for q in query)
        scores = self.relevance_scores(query_ids)
        pool = self.candidate_pool(query_ids)
        if not scores:
            return GroundTruth(query_ids, frozenset(), (), {}, self.config.workers)
        mentions: Counter[int] = Counter()
        for worker_index in range(self.config.workers):
            worker_rng = derive_rng(
                self._rng, f"worker-{worker_index}-{hash(query_ids)}"
            )
            for node in self._worker_list(worker_rng, scores, pool):
                mentions[node] += 1
        kept = {
            node: count
            for node, count in mentions.items()
            if count >= self.config.min_mentions
        }
        ranked = tuple(
            sorted(kept, key=lambda n: (-kept[n], graph.node_name(n)))
        )
        return GroundTruth(
            query=query_ids,
            entities=frozenset(kept),
            ranked=ranked,
            mention_counts=dict(kept),
            workers=self.config.workers,
        )
