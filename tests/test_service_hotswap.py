"""Multi-version hot-swap serving: swap-under-traffic on both backends.

The acceptance properties of PR 5's tentpole: an engine serving version
*v1* of a registry can :meth:`~repro.service.engine.NCEngine.swap_snapshot`
onto *v2* while concurrent clients keep querying —

* no request fails or is dropped across the swap, on the thread **and**
  process backends;
* post-swap requests are served at the new version and the old version's
  cache entries become unreachable (version-keyed cache);
* the old pin (view mapping, process-mode publication) is retired after
  its last in-flight request completes — observed as the version
  landing in ``stats().drained_versions`` and, in process mode, the
  worker pool's parked-segment gauge returning to zero.

The HTTP face (``POST /admin/reload``) and the manifest poller are
covered at the bottom.
"""

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.datasets.figure1 import figure1_graph
from repro.disk import SnapshotRegistry
from repro.service.engine import NCEngine
from repro.service.server import RegistryPoller, create_server

QUERY = ["Angela_Merkel", "Barack_Obama"]


@pytest.fixture()
def registry(tmp_path):
    """A registry with two content-identical versions of figure 1."""
    registry = SnapshotRegistry(tmp_path / "serving")
    graph = figure1_graph()
    registry.publish_graph(graph)
    registry.publish_graph(graph)
    return registry


def _wait_drained(engine, version, timeout=20.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if version in engine.stats().drained_versions:
            return True
        time.sleep(0.02)
    return False


def _swap_under_traffic(engine, registry, *, clients=3, settle_s=0.15):
    """Hammer ``engine`` from ``clients`` threads across a v1 -> v2 swap.

    Returns ``(errors, served)``; asserts nothing itself so callers can
    phrase backend-specific expectations.
    """
    stop = threading.Event()
    barrier = threading.Barrier(clients + 1)
    errors, served = [], [0] * clients

    def client(slot):
        try:
            barrier.wait()
            while not stop.is_set():
                engine.request(QUERY)
                engine.request(["Vladimir_Putin"])
                served[slot] += 2
        except BaseException as error:  # pragma: no cover - failure path
            errors.append(error)

    threads = [
        threading.Thread(target=client, args=(slot,)) for slot in range(clients)
    ]
    for thread in threads:
        thread.start()
    barrier.wait()
    time.sleep(settle_s)
    outcome = engine.swap_snapshot(registry.open_view(2))
    time.sleep(settle_s)
    stop.set()
    for thread in threads:
        thread.join()
    return outcome, errors, sum(served)


class TestSwapThreadBackend:
    def test_swap_under_traffic_no_failures(self, registry):
        with NCEngine(
            registry.open_view(1), context_size=3, max_workers=4, seed=5
        ) as engine:
            engine.pin()
            outcome, errors, served = _swap_under_traffic(engine, registry)
            assert errors == []
            assert served > 0
            assert outcome.swapped and (outcome.old_version, outcome.new_version) == (1, 2)
            # post-swap requests compute/serve at v2
            assert engine.request(QUERY).graph_version == 2
            # the drained pin retires after its last in-flight completes
            assert _wait_drained(engine, 1)
            assert engine.stats().draining_versions == ()

    def test_old_version_cache_entries_unreachable(self, registry):
        with NCEngine(
            registry.open_view(1), context_size=3, max_workers=2, seed=5
        ) as engine:
            engine.pin()
            first = engine.request(QUERY)
            assert not first.cached and first.graph_version == 1
            assert engine.request(QUERY).cached  # v1 entry is live
            engine.swap_snapshot(registry.open_view(2))
            after = engine.request(QUERY)
            assert after.graph_version == 2
            assert not after.cached  # the v1 entry was unreachable (and purged)
            assert engine.cache.stats().purged > 0
            assert engine.request(QUERY).cached  # the v2 entry now is

    def test_swap_results_match_fresh_engine_on_new_version(self, registry):
        with NCEngine(
            registry.open_view(1), context_size=3, max_workers=2, seed=5
        ) as swapped:
            swapped.pin()
            swapped.request(QUERY)
            swapped.swap_snapshot(registry.open_view(2))
            ours = swapped.request(QUERY).result
        with NCEngine(
            registry.open_view(2), context_size=3, max_workers=2, seed=5
        ) as fresh:
            theirs = fresh.request(QUERY).result
        assert [(i.label, i.score) for i in ours.results] == [
            (i.label, i.score) for i in theirs.results
        ]
        assert ours.notable_labels() == theirs.notable_labels()

    def test_swap_accepts_a_path(self, registry):
        with NCEngine(
            registry.open_view(1), context_size=3, max_workers=2, seed=5
        ) as engine:
            engine.pin()
            outcome = engine.swap_snapshot(registry.entry_for(2).path)
            assert outcome.swapped and engine.graph.version == 2

    def test_swap_same_version_is_a_noop(self, registry):
        with NCEngine(
            registry.open_view(1), context_size=3, max_workers=2, seed=5
        ) as engine:
            engine.pin()
            view = registry.open_view(1)
            try:
                outcome = engine.swap_snapshot(view)
                assert not outcome.swapped
                assert engine.stats().swaps == 0
            finally:
                view.close()  # rejected views stay caller-owned

    def test_swap_backwards_raises(self, registry):
        with NCEngine(
            registry.open_view(2), context_size=3, max_workers=2, seed=5
        ) as engine:
            engine.pin()
            view = registry.open_view(1)
            try:
                with pytest.raises(ValueError, match="monotonic"):
                    engine.swap_snapshot(view)
            finally:
                view.close()

    def test_swap_requires_a_frozen_engine(self, registry):
        with NCEngine(figure1_graph(), context_size=3, max_workers=2) as engine:
            with pytest.raises(ValueError, match="snapshot-backed"):
                engine.swap_snapshot(registry.open_view(2))

    def test_swap_requires_a_frozen_view(self, registry):
        with NCEngine(
            registry.open_view(1), context_size=3, max_workers=2
        ) as engine:
            with pytest.raises(ValueError, match="frozen snapshot view"):
                engine.swap_snapshot(figure1_graph())


class TestSwapProcessBackend:
    pytestmark = pytest.mark.slow

    def test_swap_under_traffic_no_failures(self, registry):
        with NCEngine(
            registry.open_view(1),
            context_size=3,
            max_workers=2,
            executor="process",
            seed=5,
        ) as engine:
            engine.pin()
            engine.request(QUERY)  # workers attach the v1 file
            outcome, errors, served = _swap_under_traffic(engine, registry)
            assert errors == []
            assert served > 0
            assert outcome.swapped
            # workers re-attach and answer at v2
            after = engine.request(["Vladimir_Putin", "Angela_Merkel"])
            assert after.graph_version == 2
            assert _wait_drained(engine, 1)
            # the old file's publication left the pool's parked table
            stats = engine.stats()
            assert stats.workers["retired_segments"] == 0

    def test_process_swap_parity_with_thread_swap(self, registry):
        def serve_swapped(executor):
            with NCEngine(
                registry.open_view(1),
                context_size=3,
                max_workers=2,
                executor=executor,
                seed=5,
            ) as engine:
                engine.pin()
                engine.request(QUERY)
                engine.swap_snapshot(registry.open_view(2))
                return engine.request(QUERY).result

        thread_result = serve_swapped("thread")
        process_result = serve_swapped("process")
        assert [(i.label, i.score) for i in thread_result.results] == [
            (i.label, i.score) for i in process_result.results
        ]


class TestAdminReload:
    @pytest.fixture()
    def service(self, registry):
        """A live server on v1 with the registry wired for reloads."""
        engine = NCEngine(
            registry.open_view(1), context_size=3, max_workers=2, seed=5
        )
        engine.pin()
        server = create_server(engine, port=0, registry=registry, retain=2)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        yield server, engine
        server.shutdown()
        server.server_close()
        engine.close()

    def _post(self, server, path):
        port = server.server_address[1]
        request = urllib.request.Request(
            f"http://127.0.0.1:{port}{path}", data=b"", method="POST"
        )
        with urllib.request.urlopen(request) as response:
            return response.status, json.loads(response.read())

    def _get(self, server, path):
        port = server.server_address[1]
        with urllib.request.urlopen(
            f"http://127.0.0.1:{port}{path}"
        ) as response:
            return response.status, json.loads(response.read())

    def test_reload_swaps_to_latest(self, service):
        server, engine = service
        status, body = self._post(server, "/admin/reload")
        assert status == 200
        assert body == {
            "swapped": True,
            "old_version": 1,
            "new_version": 2,
            "file": "v000002.snap",
        }
        _, health = self._get(server, "/healthz")
        assert health["graph_version"] == 2
        _, stats = self._get(server, "/stats")
        assert stats["swaps"] == 1

    def test_reload_is_idempotent(self, service):
        server, _ = service
        self._post(server, "/admin/reload")
        status, body = self._post(server, "/admin/reload")
        assert status == 200
        assert body["swapped"] is False

    def test_reload_without_registry_is_a_client_error(self):
        engine = NCEngine(figure1_graph(), context_size=3, max_workers=2)
        server = create_server(engine, port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                self._post(server, "/admin/reload")
            assert excinfo.value.code == 400
        finally:
            server.shutdown()
            server.server_close()
            engine.close()

    def test_reload_sees_versions_published_by_another_process(
        self, service, registry
    ):
        server, engine = service
        self._post(server, "/admin/reload")  # -> v2
        publisher = SnapshotRegistry(registry.directory)  # separate handle
        publisher.publish_graph(figure1_graph())  # -> v3
        status, body = self._post(server, "/admin/reload")
        assert status == 200
        assert body["swapped"] and body["new_version"] == 3

    def test_reload_gc_respects_retain_and_draining(self, service, registry):
        server, engine = service
        self._post(server, "/admin/reload")  # v1 -> v2
        assert _wait_drained(engine, 1)
        publisher = SnapshotRegistry(registry.directory)
        publisher.publish_graph(figure1_graph())  # v3
        self._post(server, "/admin/reload")  # v2 -> v3, then gc(retain=2)
        registry.refresh()
        versions = [entry.version for entry in registry.versions()]
        assert 3 in versions and 1 not in versions


class TestRegistryPoller:
    def test_poller_swaps_when_the_manifest_moves(self, registry):
        engine = NCEngine(
            registry.open_view(2), context_size=3, max_workers=2, seed=5
        )
        engine.pin()
        poller = RegistryPoller(engine, registry, interval=0.05)
        poller.start()
        try:
            publisher = SnapshotRegistry(registry.directory)
            publisher.publish_graph(figure1_graph())  # -> v3
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline and engine.graph.version != 3:
                time.sleep(0.02)
            assert engine.graph.version == 3
            assert poller.swapped == 1
        finally:
            poller.stop()
            engine.close()

    def test_poller_rejects_nonpositive_interval(self, registry):
        engine = NCEngine(registry.open_view(1), context_size=3)
        try:
            with pytest.raises(ValueError):
                RegistryPoller(engine, registry, interval=0)
        finally:
            engine.close()


class TestReviewRegressions:
    """Edge cases surfaced in review: rejection-path leaks, retain guard."""

    def test_swap_same_version_path_closes_internal_view(self, registry):
        """A path-argument no-op must close the view the engine opened."""
        with NCEngine(
            registry.open_view(2), context_size=3, max_workers=2, seed=5
        ) as engine:
            engine.pin()
            outcome = engine.swap_snapshot(registry.entry_for(2).path)
            assert not outcome.swapped
            # the internally opened view was closed: its file can be
            # reopened and served immediately (no dangling ownership)
            view = registry.open_view(2)
            view.close()

    def test_swap_backwards_path_closes_internal_view(self, registry):
        with NCEngine(
            registry.open_view(2), context_size=3, max_workers=2, seed=5
        ) as engine:
            engine.pin()
            with pytest.raises(ValueError, match="monotonic"):
                engine.swap_snapshot(registry.entry_for(1).path)

    def test_reload_with_bad_retain_still_swaps(self, registry):
        """A misconfigured retain must not turn a good swap into a 500."""
        from repro.service.server import reload_from_registry

        engine = NCEngine(
            registry.open_view(1), context_size=3, max_workers=2, seed=5
        )
        try:
            engine.pin()
            outcome = reload_from_registry(engine, registry, retain=0)
            assert outcome["swapped"] and outcome["new_version"] == 2
            assert engine.graph.version == 2
            registry.refresh()  # nothing was GC'd
            assert [e.version for e in registry.versions()] == [1, 2]
        finally:
            engine.close()

    def test_gc_preserves_rows_published_by_another_handle(self, registry):
        """gc re-reads the manifest under the writer lock before rewriting."""
        stale = SnapshotRegistry(registry.directory)  # snapshot of v1..v2
        publisher = SnapshotRegistry(registry.directory)
        publisher.publish_graph(figure1_graph())  # -> v3, unseen by `stale`
        removed = stale.gc(retain=2)
        assert [e.version for e in removed] == [1]
        registry.refresh()
        assert [e.version for e in registry.versions()] == [2, 3]

    def test_poller_retries_after_a_failed_reload(self, registry, tmp_path):
        """A transient reload failure must not freeze the mtime token."""
        engine = NCEngine(
            registry.open_view(2), context_size=3, max_workers=2, seed=5
        )
        poller = RegistryPoller(engine, registry, interval=0.05)
        fail_once = {"count": 0}
        real_refresh = registry.refresh

        def flaky_refresh():
            if fail_once["count"] == 0:
                fail_once["count"] += 1
                raise OSError("transient manifest read failure")
            real_refresh()

        registry.refresh = flaky_refresh
        poller.start()
        try:
            SnapshotRegistry(registry.directory).publish_graph(figure1_graph())
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline and engine.graph.version != 3:
                time.sleep(0.02)
            assert engine.graph.version == 3  # retried past the failure
            assert fail_once["count"] == 1
        finally:
            poller.stop()
            engine.close()
