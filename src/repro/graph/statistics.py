"""Graph statistics: label frequencies, informativeness weights, degrees.

These power Equation 1 (the label-frequency weighting of the random walk)
and the dataset summaries reported alongside the experiments.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.graph.labels import TYPE_LABEL, is_inverse_label
from repro.graph.model import KnowledgeGraph


@dataclass(frozen=True)
class DegreeSummary:
    """Five-number-ish summary of a degree distribution."""

    minimum: int
    maximum: int
    mean: float
    median: float

    @classmethod
    def from_values(cls, values: list[int]) -> "DegreeSummary":
        """Summarize a degree sample (min/max/mean/median; zeros when empty)."""
        if not values:
            return cls(0, 0, 0.0, 0.0)
        ordered = sorted(values)
        n = len(ordered)
        median = (
            float(ordered[n // 2])
            if n % 2
            else (ordered[n // 2 - 1] + ordered[n // 2]) / 2.0
        )
        return cls(ordered[0], ordered[-1], sum(ordered) / n, median)


class GraphStatistics:
    """Cached, version-aware statistics for a :class:`KnowledgeGraph`."""

    def __init__(self, graph: KnowledgeGraph) -> None:
        self._graph = graph
        self._version = -1
        self._frequencies: dict[str, float] = {}
        self._weights: dict[str, float] = {}

    def _refresh(self) -> None:
        graph = self._graph
        if graph.version == self._version:
            return
        total = graph.edge_count
        self._frequencies = {}
        self._weights = {}
        for label in graph.edge_labels:
            count = graph.edge_count_by_label(label)
            freq = count / total if total else 0.0
            self._frequencies[label] = freq
            self._weights[label] = 1.0 - freq
        self._version = graph.version

    # -- label statistics ----------------------------------------------------

    def label_frequencies(self) -> dict[str, float]:
        """``{label: |E_l| / |E|}`` for every live label."""
        self._refresh()
        return dict(self._frequencies)

    def label_weights(self) -> dict[str, float]:
        """``{label: 1 - |E_l|/|E|}`` — Equation 1's informativeness weights."""
        self._refresh()
        return dict(self._weights)

    def weight(self, label: str) -> float:
        """Equation 1's informativeness weight ``1 - |E_l|/|E|`` of ``label``."""
        self._refresh()
        try:
            return self._weights[label]
        except KeyError:
            raise KeyError(f"unknown edge label: {label!r}") from None

    def most_frequent_labels(self, limit: int = 10) -> list[tuple[str, float]]:
        """Top labels by edge share, as ``(label, frequency)`` pairs."""
        self._refresh()
        ordered = sorted(self._frequencies.items(), key=lambda kv: (-kv[1], kv[0]))
        return ordered[:limit]

    def most_informative_labels(self, limit: int = 10) -> list[tuple[str, float]]:
        """Labels with the highest Equation-1 weight (rarest labels)."""
        self._refresh()
        ordered = sorted(self._weights.items(), key=lambda kv: (-kv[1], kv[0]))
        return ordered[:limit]

    # -- degree statistics -----------------------------------------------------

    def out_degree_summary(self) -> DegreeSummary:
        """Min/max/mean/median out-degree over all nodes."""
        graph = self._graph
        return DegreeSummary.from_values(
            [graph.out_degree(node) for node in graph.nodes()]
        )

    def degree_histogram(self) -> Counter:
        """``Counter{out_degree: node count}``."""
        graph = self._graph
        return Counter(graph.out_degree(node) for node in graph.nodes())

    # -- type statistics --------------------------------------------------------

    def type_population(self) -> Counter:
        """``Counter{type name: number of direct instances}``."""
        graph = self._graph
        counts: Counter = Counter()
        for edge in graph.edges(TYPE_LABEL):
            counts[graph.node_name(edge.target)] += 1
        return counts

    # -- dataset summary ---------------------------------------------------------

    def describe(self) -> dict[str, object]:
        """A dataset card in the shape the paper reports datasets."""
        graph = self._graph
        forward_labels = [l for l in graph.edge_labels if not is_inverse_label(l)]
        forward_edges = sum(graph.edge_count_by_label(l) for l in forward_labels)
        return {
            "name": graph.name,
            "nodes": graph.node_count,
            "edges_forward": forward_edges,
            "edges_with_inverse": graph.edge_count,
            "edge_labels_forward": len(forward_labels),
            "node_types": len(self.type_population()),
        }
