"""Unit tests for repro.store.terms."""

import pytest

from repro.errors import TermError
from repro.store.terms import IRI, Literal, coerce_term, unescape_literal


class TestIRI:
    def test_construction_and_str(self):
        iri = IRI("http://example.org/Angela_Merkel")
        assert str(iri) == "http://example.org/Angela_Merkel"

    def test_local_name_after_slash(self):
        assert IRI("http://example.org/Angela_Merkel").local_name == "Angela_Merkel"

    def test_local_name_after_hash(self):
        assert IRI("http://example.org#thing").local_name == "thing"

    def test_local_name_plain(self):
        assert IRI("Angela_Merkel").local_name == "Angela_Merkel"

    def test_n3_serialization(self):
        assert IRI("a/b").n3() == "<a/b>"

    def test_empty_rejected(self):
        with pytest.raises(TermError):
            IRI("")

    @pytest.mark.parametrize("bad", ["has space", "a<b", "a>b", 'a"b', "a\\b", "a{b}"])
    def test_forbidden_characters_rejected(self, bad):
        with pytest.raises(TermError):
            IRI(bad)

    def test_equality_and_hash(self):
        assert IRI("x") == IRI("x")
        assert hash(IRI("x")) == hash(IRI("x"))
        assert IRI("x") != IRI("y")

    def test_ordering(self):
        assert IRI("a") < IRI("b")
        assert IRI("z") < Literal("a")  # IRIs sort before literals


class TestLiteral:
    def test_plain(self):
        lit = Literal("hello")
        assert str(lit) == "hello"
        assert lit.n3() == '"hello"'

    def test_language_tagged(self):
        lit = Literal("hallo", language="de")
        assert lit.n3() == '"hallo"@de'

    def test_datatyped(self):
        lit = Literal("42", datatype="http://www.w3.org/2001/XMLSchema#int")
        assert lit.n3() == '"42"^^<http://www.w3.org/2001/XMLSchema#int>'

    def test_datatype_and_language_conflict(self):
        with pytest.raises(TermError):
            Literal("x", datatype="d", language="en")

    def test_escaping_round_trip(self):
        tricky = 'line1\nline2\t"quoted"\\backslash'
        lit = Literal(tricky)
        n3 = lit.n3()
        assert "\n" not in n3
        inner = n3[1:-1]
        assert unescape_literal(inner) == tricky

    def test_unicode_escape_decoding(self):
        assert unescape_literal("\\u00e9") == "é"
        assert unescape_literal("\\U0001F600") == "\U0001F600"

    def test_ordering_among_literals(self):
        assert Literal("a") < Literal("b")
        assert Literal("a") < Literal("a", datatype="t")

    def test_literal_sorts_after_iri(self):
        assert not (Literal("a") < IRI("z"))


class TestCoerceTerm:
    def test_string_becomes_iri(self):
        assert coerce_term("abc") == IRI("abc")

    def test_terms_pass_through(self):
        iri = IRI("x")
        lit = Literal("y")
        assert coerce_term(iri) is iri
        assert coerce_term(lit) is lit

    def test_other_types_rejected(self):
        with pytest.raises(TermError):
            coerce_term(42)  # type: ignore[arg-type]
