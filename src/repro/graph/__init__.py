"""Knowledge-graph model (Definition 1 of the paper).

A knowledge graph is a quadruple ``G = (V, E, phi, psi)`` with node labels
``A`` and edge labels ``L``. Following Section 2 of the paper:

* attributes are modelled as edges to value nodes (a birth date is a node
  connected through a ``birthdate`` edge);
* every edge ``e`` with label ``l`` has a reverse edge with label ``l^-1``
  (:func:`repro.graph.labels.inverse_label` implements the naming).
"""

from repro.graph.builder import GraphBuilder
from repro.graph.compiled import CompiledGraph, compile_graph
from repro.graph.hierarchy import TypeHierarchy
from repro.graph.io import load_graph, save_graph
from repro.graph.labels import (
    SUBCLASS_OF_LABEL,
    TYPE_LABEL,
    base_label,
    inverse_label,
    is_inverse_label,
)
from repro.graph.matrix import transition_matrix, weighted_adjacency
from repro.graph.model import Edge, KnowledgeGraph
from repro.graph.search import EntityIndex
from repro.graph.statistics import GraphStatistics
from repro.graph.traversal import bfs_distances, ego_nodes, follow_label

__all__ = [
    "CompiledGraph",
    "Edge",
    "EntityIndex",
    "GraphBuilder",
    "GraphStatistics",
    "KnowledgeGraph",
    "SUBCLASS_OF_LABEL",
    "TYPE_LABEL",
    "TypeHierarchy",
    "base_label",
    "bfs_distances",
    "compile_graph",
    "ego_nodes",
    "follow_label",
    "inverse_label",
    "is_inverse_label",
    "load_graph",
    "save_graph",
    "transition_matrix",
    "weighted_adjacency",
]
