"""Classical tests the paper considers and rejects (Section 3.2).

"Classical statistical tests, such as the z-test and the chi-squared test
require either a Gaussian distribution or a minimum size of the sample."
They are implemented here with explicit assumption reporting so the
ablation benchmarks can show *why* they misbehave on query-sized samples.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np
from scipy import stats as scipy_stats

from repro.errors import StatisticsError
from repro.util.validation import normalize_counts


@dataclass(frozen=True)
class ClassicalTestResult:
    """A p-value plus a record of violated assumptions."""

    statistic: float
    p_value: float
    assumption_warnings: tuple[str, ...]

    @property
    def assumptions_met(self) -> bool:
        return not self.assumption_warnings


def chi_square_test(
    observed: "np.ndarray | list[int]",
    expected_probs: "np.ndarray | list[float]",
    *,
    min_expected_count: float = 5.0,
) -> ClassicalTestResult:
    """Pearson chi-square goodness-of-fit of ``observed`` against ``pi``.

    Reports an assumption warning whenever an expected cell count falls
    below ``min_expected_count`` (the textbook validity rule that query-
    sized samples of the paper always violate).
    """
    obs = np.asarray(observed, dtype=np.float64)
    if obs.ndim != 1 or obs.size == 0:
        raise StatisticsError("observed must be a non-empty 1-D vector")
    if np.any(obs < 0):
        raise StatisticsError("observed counts must be non-negative")
    pi = normalize_counts(np.asarray(expected_probs, dtype=np.float64), "expected")
    if pi.size != obs.size:
        raise StatisticsError("support mismatch between observed and expected")
    n = obs.sum()
    if n <= 0:
        raise StatisticsError("observed must contain at least one count")
    warnings: list[str] = []
    positive = pi > 0
    if np.any(~positive & (obs > 0)):
        # Chi-square is undefined with zero expectation and positive counts.
        return ClassicalTestResult(float("inf"), 0.0, ("zero expected cell with positive observation",))
    expected = pi[positive] * n
    if np.any(expected < min_expected_count):
        warnings.append(
            f"{int(np.sum(expected < min_expected_count))} cells have expected "
            f"count < {min_expected_count} (sample too small for chi-square)"
        )
    if int(positive.sum()) < 2:
        # A single live cell leaves zero degrees of freedom: vacuous test.
        return ClassicalTestResult(0.0, 1.0, tuple(warnings))
    statistic, p_value = scipy_stats.chisquare(obs[positive], expected)
    return ClassicalTestResult(float(statistic), float(p_value), tuple(warnings))


def two_proportion_z_test(
    successes_a: int,
    total_a: int,
    successes_b: int,
    total_b: int,
    *,
    min_sample: int = 30,
) -> ClassicalTestResult:
    """Two-sided z-test for equality of two proportions.

    Usable e.g. to compare the prevalence of one characteristic value
    between query and context; flags the normality assumption when either
    sample is below ``min_sample``.
    """
    for name, value in (
        ("successes_a", successes_a),
        ("total_a", total_a),
        ("successes_b", successes_b),
        ("total_b", total_b),
    ):
        if value < 0:
            raise StatisticsError(f"{name} must be non-negative")
    if total_a == 0 or total_b == 0:
        raise StatisticsError("totals must be positive")
    if successes_a > total_a or successes_b > total_b:
        raise StatisticsError("successes cannot exceed totals")
    warnings: list[str] = []
    if total_a < min_sample or total_b < min_sample:
        warnings.append(
            f"sample sizes ({total_a}, {total_b}) below {min_sample}: "
            "normal approximation unreliable"
        )
    p_a = successes_a / total_a
    p_b = successes_b / total_b
    pooled = (successes_a + successes_b) / (total_a + total_b)
    variance = pooled * (1 - pooled) * (1 / total_a + 1 / total_b)
    if variance == 0:
        # Both samples unanimous and identical: no evidence of difference.
        return ClassicalTestResult(0.0, 1.0, tuple(warnings))
    z = (p_a - p_b) / math.sqrt(variance)
    p_value = 2.0 * (1.0 - scipy_stats.norm.cdf(abs(z)))
    return ClassicalTestResult(float(z), float(p_value), tuple(warnings))
