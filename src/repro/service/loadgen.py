"""Zipf-skewed, entity-centric load generator for the query service.

The benches replay tiny hand-written traces; this module generates the
traffic shape the ROADMAP's "millions of users" claims actually need to
be judged against. Two findings from the knowledge-base literature drive
the model:

* **Popularity skew.** Query traffic over public KBs (the YAGO/DBpedia
  family the paper evaluates on) is heavily skewed toward a small set of
  popular entities — so seed entities are drawn from a Zipf
  distribution over the entity ranking (``P(rank) ∝ 1/rank^s``), not
  uniformly.
* **Entity-centric sessions.** FindNC is a per-entity summarization
  workload: a user exploring one entity issues several comparison
  queries around it. Sessions therefore fix a *seed* entity and pair it
  with several Zipf-drawn partners, instead of sampling i.i.d. pairs.

Two execution disciplines, selected by :attr:`LoadProfile.mode`:

* ``"open"`` — **open loop**: request arrivals follow a Poisson process
  (exponential inter-arrival gaps at :attr:`LoadProfile.rate`/s),
  independent of completions. Latency is measured from the *scheduled*
  arrival instant, so queueing delay under overload is charged to the
  service (no coordinated omission).
* ``"closed"`` — **closed loop**: :attr:`LoadProfile.concurrency`
  workers issue requests back to back; offered load adapts to service
  speed. The right mode for measuring best-case capacity.

Everything upstream of execution is deterministic:
:func:`build_schedule` maps ``(entities, profile)`` onto an identical
request sequence for a fixed seed, so two runs against two builds see
the same traffic. Mid-run control actions (hot swap, fault storm) ride
along as :class:`LoadEvent` callbacks fired at their scheduled offsets.

Drivers: the ``repro loadgen`` CLI subcommand (in-process engine or a
live HTTP endpoint) and the ``load_profile`` phase of
``benchmarks/run_service_bench.py``.
"""

from __future__ import annotations

import itertools
import json
import math
import random
import threading
import time
import urllib.request
from bisect import bisect_left
from dataclasses import dataclass, field

from repro.service.tracing import SpanContext, new_span_id, new_trace_id

#: Slowest traced requests surfaced per run (latency + server trace id).
SLOWEST_REPORTED = 5


@dataclass(frozen=True)
class LoadProfile:
    """The full description of one load run (shape, skew, and pacing).

    ``requests`` bounds both modes; in open-loop mode ``duration_s``
    additionally stops schedule generation even when the request budget
    is not exhausted. ``zipf_s`` is the skew exponent (1.0–1.2 is the
    published range for KB entity popularity; higher = more head-heavy).
    ``session_length`` is the mean number of queries issued around one
    seed entity before the session moves on.
    """

    mode: str = "open"
    requests: int = 200
    duration_s: float = 10.0
    rate: float = 50.0
    concurrency: int = 4
    zipf_s: float = 1.1
    session_length: int = 4
    seed: int = 0

    def __post_init__(self) -> None:
        """Validate the profile; raises ``ValueError`` on a bad knob."""
        if self.mode not in ("open", "closed"):
            raise ValueError(
                f"mode must be 'open' or 'closed', got {self.mode!r}"
            )
        if self.requests < 1:
            raise ValueError(f"requests must be >= 1, got {self.requests}")
        if self.duration_s <= 0:
            raise ValueError(f"duration_s must be > 0, got {self.duration_s}")
        if self.rate <= 0:
            raise ValueError(f"rate must be > 0, got {self.rate}")
        if self.concurrency < 1:
            raise ValueError(
                f"concurrency must be >= 1, got {self.concurrency}"
            )
        if self.zipf_s <= 0:
            raise ValueError(f"zipf_s must be > 0, got {self.zipf_s}")
        if self.session_length < 1:
            raise ValueError(
                f"session_length must be >= 1, got {self.session_length}"
            )


@dataclass(frozen=True)
class ScheduledRequest:
    """One planned query: arrival offset, entity pair, session tag."""

    at_s: float
    query: "tuple[str, ...]"
    session: int


@dataclass(frozen=True)
class LoadEvent:
    """A control action fired once at ``at_s`` seconds into the run.

    ``action`` is a zero-argument callable — e.g. a registry hot swap
    (``lambda: engine.swap_snapshot(path)``) or a fault-storm arm/disarm
    pair. A raising action is recorded in the report's ``event_errors``
    instead of aborting the run.
    """

    at_s: float
    name: str
    action: "object" = None


class _ZipfSampler:
    """Draw ranks 1..n with probability proportional to ``1/rank^s``."""

    def __init__(self, n: int, s: float) -> None:
        if n < 1:
            raise ValueError(f"need at least one entity, got {n}")
        weights = [1.0 / (rank**s) for rank in range(1, n + 1)]
        total = sum(weights)
        self._cdf = list(itertools.accumulate(w / total for w in weights))
        self._cdf[-1] = 1.0  # guard against float drift

    def sample(self, rng: random.Random) -> int:
        """A 0-based rank index drawn from the Zipf distribution."""
        return bisect_left(self._cdf, rng.random())


def build_schedule(
    entities: "list[str]", profile: LoadProfile
) -> "tuple[list[ScheduledRequest], dict]":
    """The deterministic request sequence for ``(entities, profile)``.

    ``entities`` is the popularity *ranking* — index 0 is the most
    popular entity (Zipf rank 1). Sessions draw a seed entity by Zipf
    rank, then issue a geometrically distributed number of pair queries
    (mean ``session_length``) pairing that seed with Zipf-drawn
    partners. Open-loop arrival offsets are Poisson; closed-loop
    requests all carry ``at_s=0.0`` (workers pace themselves).

    Returns ``(schedule, skew)`` where ``skew`` summarizes the realized
    popularity distribution (distinct pairs, head share) for the bench
    report. Fixed seed ⇒ identical output, byte for byte.
    """
    if len(entities) < 2:
        raise ValueError(
            f"need at least two entities to form query pairs, got {len(entities)}"
        )
    rng = random.Random(profile.seed)
    sampler = _ZipfSampler(len(entities), profile.zipf_s)
    # Geometric session length with the configured mean: p = 1/mean.
    continue_p = 1.0 - 1.0 / profile.session_length

    schedule: "list[ScheduledRequest]" = []
    clock = 0.0
    session = 0
    session_left = 0
    seed_entity = entities[0]
    pair_counts: "dict[tuple[str, str], int]" = {}
    while len(schedule) < profile.requests:
        if profile.mode == "open":
            clock += rng.expovariate(profile.rate)
            if clock > profile.duration_s:
                break
        if session_left <= 0:
            # Start a new entity-centric session around a Zipf-drawn seed.
            session += 1
            seed_entity = entities[sampler.sample(rng)]
            session_left = 1
            while rng.random() < continue_p:
                session_left += 1
        partner = seed_entity
        while partner == seed_entity:
            partner = entities[sampler.sample(rng)]
        session_left -= 1
        pair = (seed_entity, partner)
        pair_counts[tuple(sorted(pair))] = (
            pair_counts.get(tuple(sorted(pair)), 0) + 1
        )
        schedule.append(
            ScheduledRequest(
                at_s=clock if profile.mode == "open" else 0.0,
                query=pair,
                session=session,
            )
        )
    total = len(schedule)
    ranked = sorted(pair_counts.values(), reverse=True)
    head = max(1, len(ranked) // 10)
    skew = {
        "distinct_pairs": len(ranked),
        "sessions": session,
        "top_pair_share": ranked[0] / total if total else 0.0,
        "head_10pct_share": sum(ranked[:head]) / total if total else 0.0,
    }
    return schedule, skew


@dataclass(frozen=True)
class LoadReport:
    """What one :func:`run_load` execution measured."""

    mode: str
    requests: int
    completed: int
    #: error code (exception class name) -> count
    errors: "dict[str, int]"
    duration_s: float
    achieved_rps: float
    #: per-request latency in seconds, completion order
    latencies_s: "tuple[float, ...]"
    #: open loop only: dispatch lag behind the schedule (p99), seconds
    dispatch_lag_p99_s: float = 0.0
    events_fired: "tuple[str, ...]" = ()
    event_errors: "dict[str, str]" = field(default_factory=dict)
    #: slowest traced requests: ``{"latency_s", "trace_id"}`` dicts,
    #: slowest first — paste the id into GET /v1/debug/traces/<id>
    slowest: "tuple[dict, ...]" = ()

    def quantile(self, q: float) -> float:
        """The ``q``-quantile (0..1) of the completed-request latencies."""
        if not self.latencies_s:
            return math.nan
        ordered = sorted(self.latencies_s)
        index = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
        return ordered[index]

    def summary(self) -> dict:
        """The JSON-ready digest embedded in bench reports / CLI output."""
        lat = sorted(self.latencies_s)
        return {
            "mode": self.mode,
            "requests": self.requests,
            "completed": self.completed,
            "errors": dict(self.errors),
            "duration_s": self.duration_s,
            "achieved_rps": self.achieved_rps,
            "latency_s": {
                "mean": sum(lat) / len(lat) if lat else None,
                "p50": self.quantile(0.50) if lat else None,
                "p90": self.quantile(0.90) if lat else None,
                "p99": self.quantile(0.99) if lat else None,
                "max": lat[-1] if lat else None,
            },
            "dispatch_lag_p99_s": self.dispatch_lag_p99_s,
            "events_fired": list(self.events_fired),
            "event_errors": dict(self.event_errors),
            "slowest": [dict(entry) for entry in self.slowest],
        }


def engine_target(engine, *, context_size=None, alpha=None, timeout=None):
    """A :func:`run_load` target calling an in-process engine directly."""

    def call(query: "tuple[str, ...]") -> None:
        engine.request(
            list(query), context_size=context_size, alpha=alpha, timeout=timeout
        )

    return call


def http_target(
    base_url: str,
    *,
    timeout_s: float = 30.0,
    trace_sample_rate: float = 0.0,
    seed: int = 0,
):
    """A :func:`run_load` target POSTing ``/v1/search`` on a live server.

    Non-2xx answers raise (urllib's ``HTTPError``), so HTTP failures land
    in the report's error counts under ``HTTPError``.

    With ``trace_sample_rate`` > 0 a seeded coin marks that fraction of
    requests with a sampled W3C ``traceparent`` header — the server
    force-retains those traces and echoes the id in ``X-Trace-Id``,
    which the target returns so the report can list trace ids for its
    slowest requests (``repro loadgen --trace-sample-rate``).
    """
    if not 0.0 <= trace_sample_rate <= 1.0:
        raise ValueError(
            f"trace_sample_rate must be within [0, 1], got {trace_sample_rate}"
        )
    url = base_url.rstrip("/") + "/v1/search"
    rng = random.Random(seed ^ 0x7ACE) if trace_sample_rate > 0.0 else None
    rng_lock = threading.Lock()

    def call(query: "tuple[str, ...]") -> "str | None":
        headers = {"Content-Type": "application/json"}
        if rng is not None:
            with rng_lock:
                sampled = rng.random() < trace_sample_rate
            if sampled:
                headers["traceparent"] = SpanContext(
                    new_trace_id(), new_span_id(), True
                ).to_traceparent()
        request = urllib.request.Request(
            url,
            data=json.dumps({"query": list(query)}).encode("utf-8"),
            headers=headers,
            method="POST",
        )
        with urllib.request.urlopen(request, timeout=timeout_s) as response:
            response.read()
            return response.headers.get("X-Trace-Id")

    return call


class _RunState:
    """Shared mutable accumulator for the worker threads of one run."""

    def __init__(self) -> None:
        self.lock = threading.Lock()
        self.latencies: "list[float]" = []
        self.errors: "dict[str, int]" = {}
        self.dispatch_lags: "list[float]" = []
        self.traced: "list[tuple[float, str]]" = []
        self.completed = 0

    def record(
        self,
        latency_s: float,
        error: "str | None",
        lag_s: float,
        trace_id: "str | None" = None,
    ) -> None:
        with self.lock:
            if error is None:
                self.completed += 1
                self.latencies.append(latency_s)
                if trace_id is not None:
                    self.traced.append((latency_s, trace_id))
            else:
                self.errors[error] = self.errors.get(error, 0) + 1
            self.dispatch_lags.append(lag_s)


def _fire_events(
    events: "tuple[LoadEvent, ...]",
    start: float,
    halt: threading.Event,
    fired: "list[str]",
    errors: "dict[str, str]",
) -> None:
    """Run scheduled control actions at their offsets (event thread body)."""
    for event in sorted(events, key=lambda e: e.at_s):
        delay = event.at_s - (time.monotonic() - start)
        if delay > 0 and halt.wait(delay):
            return
        try:
            if event.action is not None:
                event.action()
            fired.append(event.name)
        except Exception as error:  # noqa: BLE001 - keep the run alive
            errors[event.name] = repr(error)


def run_load(
    target,
    schedule: "list[ScheduledRequest]",
    profile: LoadProfile,
    *,
    events: "tuple[LoadEvent, ...]" = (),
) -> LoadReport:
    """Execute ``schedule`` against ``target``; measure what came back.

    ``target`` is a callable taking one query tuple (see
    :func:`engine_target` / :func:`http_target`); an exception marks
    that request failed and is counted by exception class name.

    Open loop: a dispatcher thread releases each request at its
    scheduled offset onto a worker pool sized for the offered load;
    latency runs from the *scheduled* arrival, so backlog shows up as
    latency rather than being silently absorbed (no coordinated
    omission). Closed loop: ``profile.concurrency`` workers drain the
    schedule back to back, latency measured per call.
    """
    state = _RunState()
    halt = threading.Event()
    fired: "list[str]" = []
    event_errors: "dict[str, str]" = {}
    start = time.monotonic()
    event_thread = None
    if events:
        event_thread = threading.Thread(
            target=_fire_events,
            args=(tuple(events), start, halt, fired, event_errors),
            name="nc-loadgen-events",
            daemon=True,
        )
        event_thread.start()

    if profile.mode == "open":
        _run_open_loop(target, schedule, profile, state, start)
    else:
        _run_closed_loop(target, schedule, profile, state)

    duration = time.monotonic() - start
    halt.set()
    if event_thread is not None:
        event_thread.join(timeout=5.0)
    lags = sorted(state.dispatch_lags)
    lag_p99 = lags[min(len(lags) - 1, round(0.99 * (len(lags) - 1)))] if lags else 0.0
    slowest = tuple(
        {"latency_s": round(latency, 6), "trace_id": trace_id}
        for latency, trace_id in sorted(state.traced, reverse=True)[
            :SLOWEST_REPORTED
        ]
    )
    return LoadReport(
        mode=profile.mode,
        requests=len(schedule),
        completed=state.completed,
        errors=dict(state.errors),
        duration_s=duration,
        achieved_rps=state.completed / duration if duration > 0 else 0.0,
        latencies_s=tuple(state.latencies),
        dispatch_lag_p99_s=lag_p99 if profile.mode == "open" else 0.0,
        events_fired=tuple(fired),
        event_errors=event_errors,
        slowest=slowest,
    )


def _call_one(target, request: ScheduledRequest, state: _RunState,
              reference: "float | None", lag_s: float) -> None:
    """Issue one request; charge latency from ``reference`` when given."""
    started = time.monotonic() if reference is None else reference
    error: "str | None" = None
    trace_id: "str | None" = None
    try:
        returned = target(request.query)
        # Targets may return the server-echoed trace id (http_target);
        # anything else a target returns is not one.
        if isinstance(returned, str):
            trace_id = returned
    except Exception as exc:  # noqa: BLE001 - counted, not raised
        error = type(exc).__name__
    state.record(time.monotonic() - started, error, lag_s, trace_id)


def _run_open_loop(target, schedule, profile: LoadProfile, state: _RunState,
                   start: float) -> None:
    """Poisson-paced dispatcher: arrivals independent of completions."""
    # Size the pool for the offered load (Little's law headroom) so the
    # generator itself does not become the bottleneck it is measuring;
    # still bounded to keep a stuck target from spawning without limit.
    workers = max(profile.concurrency, min(64, 2 * profile.concurrency + 8))
    from concurrent.futures import ThreadPoolExecutor

    with ThreadPoolExecutor(
        max_workers=workers, thread_name_prefix="nc-loadgen"
    ) as pool:
        for request in schedule:
            now = time.monotonic()
            release = start + request.at_s
            if release > now:
                time.sleep(release - now)
                lag = 0.0
            else:
                lag = now - release
            # Latency reference is the *scheduled* arrival: if the pool
            # queues the call, that wait is charged to the service.
            pool.submit(_call_one, target, request, state, release, lag)


def _run_closed_loop(target, schedule, profile: LoadProfile,
                     state: _RunState) -> None:
    """Fixed-concurrency workers draining the schedule back to back."""
    cursor = itertools.count()

    def worker() -> None:
        while True:
            index = next(cursor)
            if index >= len(schedule):
                return
            _call_one(target, schedule[index], state, None, 0.0)

    threads = [
        threading.Thread(target=worker, name=f"nc-loadgen-{i}", daemon=True)
        for i in range(profile.concurrency)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()


def entity_ranking(graph, limit: int = 256) -> "list[str]":
    """The first ``limit`` node names, as the popularity ranking.

    Node ids are assigned in insertion order, which for the bundled
    datasets puts the well-connected head entities first; the Zipf
    sampler supplies the skew over whatever ranking it is given.
    """
    count = min(limit, graph.node_count)
    return [graph.node_name(i) for i in range(count)]
