"""Unit tests for repro.store.triplestore.TripleStore."""

import pytest

from repro.store.terms import IRI, Literal
from repro.store.triples import Triple
from repro.store.triplestore import TripleStore


def t(s, p, o):
    return Triple.of(s, p, o)


@pytest.fixture()
def store():
    st = TripleStore()
    st.add(t("merkel", "leaderOf", "germany"))
    st.add(t("obama", "leaderOf", "usa"))
    st.add(t("merkel", "studied", "physics"))
    st.add(t("obama", "studied", "law"))
    st.add(Triple(IRI("merkel"), IRI("born"), Literal("1954")))
    return st


class TestMutation:
    def test_add_is_idempotent(self, store):
        assert len(store) == 5
        assert store.add(t("merkel", "leaderOf", "germany")) is False
        assert len(store) == 5

    def test_add_all_counts_new(self):
        st = TripleStore()
        count = st.add_all([t("a", "b", "c"), t("a", "b", "c"), t("a", "b", "d")])
        assert count == 2

    def test_constructor_bulk_load(self):
        st = TripleStore([t("a", "b", "c"), t("x", "y", "z")])
        assert len(st) == 2

    def test_remove(self, store):
        assert store.remove(t("merkel", "leaderOf", "germany")) is True
        assert t("merkel", "leaderOf", "germany") not in store
        assert len(store) == 4

    def test_remove_missing(self, store):
        assert store.remove(t("nobody", "did", "anything")) is False
        assert len(store) == 5

    def test_remove_then_match_consistent(self, store):
        store.remove(t("merkel", "studied", "physics"))
        assert list(store.match(subject=IRI("merkel"), predicate=IRI("studied"))) == []
        # The other indexes agree.
        assert store.count(predicate=IRI("studied")) == 1
        assert store.count(obj=IRI("physics")) == 0


class TestMatch:
    def test_contains(self, store):
        assert t("merkel", "leaderOf", "germany") in store
        assert t("merkel", "leaderOf", "usa") not in store
        assert "not-a-triple" not in store

    def test_match_fully_bound(self, store):
        matches = list(
            store.match(IRI("merkel"), IRI("leaderOf"), IRI("germany"))
        )
        assert matches == [t("merkel", "leaderOf", "germany")]

    def test_match_by_subject(self, store):
        assert len(list(store.match(subject=IRI("merkel")))) == 3

    def test_match_by_predicate(self, store):
        leaders = list(store.match(predicate=IRI("leaderOf")))
        assert {str(m.subject) for m in leaders} == {"merkel", "obama"}

    def test_match_by_object(self, store):
        assert len(list(store.match(obj=IRI("law")))) == 1

    def test_match_subject_predicate(self, store):
        matches = list(store.match(subject=IRI("obama"), predicate=IRI("studied")))
        assert matches == [t("obama", "studied", "law")]

    def test_match_predicate_object(self, store):
        matches = list(store.match(predicate=IRI("studied"), obj=IRI("law")))
        assert len(matches) == 1

    def test_match_subject_object(self, store):
        matches = list(store.match(subject=IRI("merkel"), obj=IRI("germany")))
        assert matches == [t("merkel", "leaderOf", "germany")]

    def test_match_all(self, store):
        assert len(list(store.match())) == 5

    def test_match_unknown_term_is_empty(self, store):
        assert list(store.match(subject=IRI("zz"))) == []
        assert list(store.match(predicate=IRI("zz"))) == []
        assert list(store.match(obj=IRI("zz"))) == []

    def test_literal_objects_matched(self, store):
        matches = list(store.match(obj=Literal("1954")))
        assert len(matches) == 1
        assert str(matches[0].subject) == "merkel"


class TestCount:
    def test_count_total(self, store):
        assert store.count() == 5

    @pytest.mark.parametrize(
        "kwargs,expected",
        [
            (dict(subject=IRI("merkel")), 3),
            (dict(predicate=IRI("studied")), 2),
            (dict(obj=IRI("law")), 1),
            (dict(subject=IRI("merkel"), predicate=IRI("studied")), 1),
            (dict(predicate=IRI("leaderOf"), obj=IRI("usa")), 1),
            (dict(subject=IRI("merkel"), obj=IRI("germany")), 1),
            (dict(subject=IRI("zz")), 0),
        ],
    )
    def test_count_patterns(self, store, kwargs, expected):
        assert store.count(**kwargs) == expected

    def test_count_matches_match(self, store):
        # count() must agree with len(match()) for every pattern shape.
        patterns = [
            {},
            dict(subject=IRI("obama")),
            dict(predicate=IRI("studied")),
            dict(obj=IRI("germany")),
            dict(subject=IRI("obama"), predicate=IRI("leaderOf")),
        ]
        for pattern in patterns:
            assert store.count(**pattern) == len(list(store.match(**pattern)))


class TestVocabulary:
    def test_subjects(self, store):
        assert {str(s) for s in store.subjects()} == {"merkel", "obama"}

    def test_predicates(self, store):
        assert {str(p) for p in store.predicates()} == {"leaderOf", "studied", "born"}

    def test_objects(self, store):
        objects = set(store.objects())
        assert IRI("germany") in objects
        assert Literal("1954") in objects

    def test_iter_yields_all(self, store):
        assert len(list(iter(store))) == 5
