"""The committed documentation surface stays link-clean (tools/check_docs.py)."""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent


@pytest.fixture(scope="module")
def check_docs():
    """Import tools/check_docs.py as a module (tools/ is not a package)."""
    spec = importlib.util.spec_from_file_location(
        "check_docs", REPO_ROOT / "tools" / "check_docs.py"
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules.setdefault("check_docs", module)
    spec.loader.exec_module(module)
    return module


class TestCommittedDocs:
    def test_default_doc_set_exists(self, check_docs):
        for rel in check_docs.DEFAULT_DOC_SET:
            assert (REPO_ROOT / rel).exists(), rel

    def test_all_links_resolve(self, check_docs, capsys):
        assert check_docs.main([]) == 0, capsys.readouterr().err


class TestChecker:
    def test_broken_relative_link_fails(self, check_docs, tmp_path):
        doc = tmp_path / "doc.md"
        doc.write_text("see [missing](./nope.md)\n")
        problems = check_docs.check_file(doc)
        assert problems and "broken link" in problems[0]

    def test_missing_anchor_fails(self, check_docs, tmp_path):
        doc = tmp_path / "doc.md"
        doc.write_text("# Real Heading\n\n[jump](#not-a-heading)\n")
        problems = check_docs.check_file(doc)
        assert problems and "missing anchor" in problems[0]

    def test_good_anchor_and_cross_file_anchor_pass(self, check_docs, tmp_path):
        other = tmp_path / "other.md"
        other.write_text("## Target Section!\n")
        doc = tmp_path / "doc.md"
        doc.write_text(
            "# My Doc\n[self](#my-doc) and [there](other.md#target-section)\n"
        )
        assert check_docs.check_file(doc) == []

    def test_external_links_and_code_blocks_ignored(self, check_docs, tmp_path):
        doc = tmp_path / "doc.md"
        doc.write_text(
            "[web](https://example.com)\n\n```\n[fake](./gone.md)\n```\n"
        )
        assert check_docs.check_file(doc) == []

    def test_duplicate_headings_get_suffixes(self, check_docs, tmp_path):
        doc = tmp_path / "doc.md"
        doc.write_text("# Same\n# Same\n[a](#same) [b](#same-1)\n")
        assert check_docs.check_file(doc) == []

    def test_underscores_survive_slugging_like_github(self, check_docs, tmp_path):
        doc = tmp_path / "doc.md"
        doc.write_text("## `node_count` semantics\n[ok](#node_count-semantics)\n")
        assert check_docs.check_file(doc) == []
        doc.write_text("## `node_count` semantics\n[bad](#nodecount-semantics)\n")
        problems = check_docs.check_file(doc)
        assert problems and "missing anchor" in problems[0]

    def test_main_reports_missing_file(self, check_docs, tmp_path, capsys):
        assert check_docs.main([str(tmp_path / "ghost.md")]) == 1
        assert "does not exist" in capsys.readouterr().err


class TestDocstringSurface:
    """The ruff D100–D104 CI gate, runnable without ruff (PR 4)."""

    def test_default_packages_are_clean(self, check_docs):
        problems = check_docs.check_docstrings(
            [REPO_ROOT / rel for rel in check_docs.DEFAULT_DOCSTRING_PACKAGES]
        )
        assert problems == []

    def test_disk_package_is_in_scope(self, check_docs):
        assert "src/repro/disk" in check_docs.DEFAULT_DOCSTRING_PACKAGES

    def test_missing_module_docstring_flagged(self, check_docs, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("x = 1\n")
        problems = check_docs.check_docstrings([bad])
        assert problems and "module docstring" in problems[0]

    def test_missing_public_def_docstrings_flagged(self, check_docs, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text(
            '"""Module doc."""\n'
            "class Public:\n"
            "    def method(self):\n"
            "        pass\n"
            "def _private():\n"
            "    pass\n"
        )
        problems = check_docs.check_docstrings([bad])
        assert len(problems) == 2  # class + method; _private exempt
        assert any("D101" in p for p in problems)
        assert any("D102/D103" in p for p in problems)

    def test_private_class_members_exempt(self, check_docs, tmp_path):
        """Members of private classes are private too (pydocstyle rule)."""
        good = tmp_path / "good.py"
        good.write_text(
            '"""Module doc."""\n'
            "class _Segment:\n"
            "    def close(self):\n"
            "        pass\n"
        )
        assert check_docs.check_docstrings([good]) == []

    def test_nested_helpers_exempt(self, check_docs, tmp_path):
        good = tmp_path / "good.py"
        good.write_text(
            '"""Module doc."""\n'
            "def outer():\n"
            '    """Doc."""\n'
            "    def inner():\n"
            "        pass\n"
            "    return inner\n"
        )
        assert check_docs.check_docstrings([good]) == []

    def test_cli_mode(self, check_docs, capsys):
        assert check_docs.main(["--docstrings"]) == 0
        assert "docstring surface complete" in capsys.readouterr().out

    def test_cli_mode_missing_path(self, check_docs, tmp_path, capsys):
        assert check_docs.main(["--docstrings", str(tmp_path / "ghost")]) == 1
        assert "does not exist" in capsys.readouterr().err
