"""Unit tests for the curated seed data."""

import pytest

from repro.datasets import schema as s
from repro.datasets.seeds import (
    ACTORS_DOMAIN,
    SEED_PEOPLE,
    TABLE1_DOMAINS,
    domain_by_name,
    seed_person,
)


class TestDomains:
    def test_three_domains_of_six(self):
        assert len(TABLE1_DOMAINS) == 3
        for domain in TABLE1_DOMAINS:
            assert len(domain.entities) == 6

    def test_nested_queries(self):
        nested = ACTORS_DOMAIN.nested_queries()
        assert [len(q) for q in nested] == [2, 3, 4, 5, 6]
        assert nested[0] == ("Brad_Pitt", "George_Clooney")
        # prefixes are nested
        for smaller, larger in zip(nested, nested[1:]):
            assert larger[: len(smaller)] == smaller

    def test_domain_lookup(self):
        assert domain_by_name("actors") is ACTORS_DOMAIN
        with pytest.raises(KeyError):
            domain_by_name("astronauts")


class TestSeedPeople:
    def test_lookup(self):
        merkel = seed_person("Angela_Merkel")
        assert merkel.profession == s.POLITICIAN
        assert merkel.children == ()
        with pytest.raises(KeyError):
            seed_person("Nobody")

    def test_unique_names(self):
        names = [p.name for p in SEED_PEOPLE]
        assert len(names) == len(set(names))

    def test_every_table1_entity_has_a_seed_record(self):
        seed_names = {p.name for p in SEED_PEOPLE}
        for domain in TABLE1_DOMAINS:
            for entity in domain.entities:
                assert entity in seed_names, entity

    def test_figure7_created_pattern(self):
        # four of the five query actors created exactly one work; the fifth
        # (Johansson) none.
        created_counts = [
            len(seed_person(name).created) for name in ACTORS_DOMAIN.entities[:5]
        ]
        assert created_counts.count(0) == 1
        assert created_counts.count(1) == 4

    def test_genders_valid(self):
        for person in SEED_PEOPLE:
            assert person.gender in (s.MALE, s.FEMALE)

    def test_professions_valid(self):
        for person in SEED_PEOPLE:
            assert person.profession in s.PROFESSIONS
