"""The public API surface: everything advertised in __all__ exists and the
documented quickstart works."""

import importlib

import pytest

import repro


class TestTopLevelExports:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        assert repro.__version__.count(".") == 2

    @pytest.mark.parametrize(
        "module",
        [
            "repro.core",
            "repro.graph",
            "repro.store",
            "repro.walk",
            "repro.stats",
            "repro.datasets",
            "repro.eval",
            "repro.service",
            "repro.util",
        ],
    )
    def test_subpackage_alls_resolve(self, module):
        mod = importlib.import_module(module)
        for name in getattr(mod, "__all__", []):
            assert hasattr(mod, name), f"{module}.{name}"


class TestDocumentedQuickstart:
    def test_module_docstring_example_runs(self):
        from repro import FindNC
        from repro.datasets import figure1_graph

        graph = figure1_graph()
        finder = FindNC(graph, context_size=3, rng=7)
        result = finder.run(["Angela_Merkel", "Barack_Obama"])
        summary = result.summary(graph)
        assert "Angela_Merkel" in summary

    def test_public_items_have_docstrings(self):
        undocumented = [
            name
            for name in repro.__all__
            if not name.startswith("_")
            and getattr(repro, name).__doc__ in (None, "")
            and not isinstance(getattr(repro, name), str)
        ]
        assert undocumented == []
