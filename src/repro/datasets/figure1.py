"""The running example of Figure 1, as an executable graph.

Query: {Angela_Merkel, Barack_Obama}; discovered context: {Vladimir_Putin,
Matteo_Renzi, Francois_Hollande}. The notable characteristics the figure
illustrates: Merkel has no child (cardinality) and studied Physics while
the context studied Law (instance).
"""

from __future__ import annotations

from repro.datasets import schema as s
from repro.graph.builder import GraphBuilder
from repro.graph.model import KnowledgeGraph


def figure1_graph() -> KnowledgeGraph:
    """Build the Figure-1 example graph (deterministic, no randomness)."""
    builder = GraphBuilder("figure1")

    leaders = {
        "Angela_Merkel": {
            "country": "Germany",
            "studied": "Physics",
            "children": (),
            "gender": s.FEMALE,
        },
        "Barack_Obama": {
            "country": "United_States",
            "studied": "Law",
            "children": ("Malia", "Natasha"),
            "gender": s.MALE,
        },
        "Vladimir_Putin": {
            "country": "Russia",
            "studied": "Law",
            "children": ("Mariya", "Yecaterina"),
            "gender": s.MALE,
        },
        "Matteo_Renzi": {
            "country": "Italy",
            "studied": "Law",
            "children": ("Francesca", "Emanuele", "Ester"),
            "gender": s.MALE,
        },
        "Francois_Hollande": {
            "country": "France",
            "studied": "Law",
            "children": ("Thomas", "Clemence", "Julien", "Flora"),
            "gender": s.MALE,
        },
    }

    builder.subclass(s.POLITICIAN, s.PERSON)
    builder.subclass(s.PERSON, s.ENTITY)
    for name, facts in leaders.items():
        builder.typed(name, s.POLITICIAN)
        builder.fact(name, s.IS_LEADER_OF, str(facts["country"]))
        builder.fact(name, s.STUDIED, str(facts["studied"]))
        builder.fact(name, s.GENDER, str(facts["gender"]))
        for child in facts["children"]:
            builder.typed(child, s.PERSON)
            builder.fact(name, s.HAS_CHILD, child)
    for country in ("Germany", "United_States", "Russia", "Italy", "France"):
        builder.typed(country, s.COUNTRY)
    for field in ("Physics", "Law"):
        builder.typed(field, s.ACADEMIC_FIELD)

    # A handful of off-domain entities so context selection has negatives.
    builder.typed("Brad_Pitt", s.ACTOR)
    builder.typed("George_Clooney", s.ACTOR)
    builder.fact("Brad_Pitt", s.ACTED_IN, "Oceans_Eleven")
    builder.fact("George_Clooney", s.ACTED_IN, "Oceans_Eleven")
    builder.typed("Oceans_Eleven", s.MOVIE)
    builder.subclass(s.ACTOR, s.PERSON)

    return builder.build()


#: The query of Figure 1.
FIGURE1_QUERY: tuple[str, ...] = ("Angela_Merkel", "Barack_Obama")

#: The context nodes Figure 1 shows as discovered.
FIGURE1_CONTEXT: tuple[str, ...] = (
    "Vladimir_Putin",
    "Matteo_Renzi",
    "Francois_Hollande",
)
