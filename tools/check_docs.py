"""Markdown link and anchor checker for the repo's documentation surface.

Validates, for every markdown file it is given (or the default doc set):

* **relative links** ``[text](path)`` resolve to an existing file or
  directory (relative to the file containing the link);
* **anchored links** ``[text](path#anchor)`` / ``[text](#anchor)`` point
  at a heading that actually exists in the target markdown file, using
  GitHub's heading-to-anchor slug rules (lowercase, spaces to hyphens,
  punctuation stripped);
* external links (``http://``, ``https://``, ``mailto:``) are *not*
  fetched — CI must not depend on the network — but obviously malformed
  ones (empty targets) still fail.

Exit status 0 when every link resolves, 1 otherwise (one line per broken
link). Run from the repo root::

    python tools/check_docs.py            # the default documentation set
    python tools/check_docs.py README.md docs/ARCHITECTURE.md
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: The documentation surface checked by CI when no files are given.
DEFAULT_DOC_SET = (
    "README.md",
    "ROADMAP.md",
    "CHANGES.md",
    "docs/ARCHITECTURE.md",
    "benchmarks/README.md",
    "src/repro/service/README.md",
)

#: Inline markdown links: [text](target). Images share the syntax with a
#: leading "!", which the pattern tolerates. Nested brackets in the text
#: are not supported (the doc set doesn't use them).
_LINK_PATTERN = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")

#: ATX headings, the only heading style the doc set uses.
_HEADING_PATTERN = re.compile(r"^(#{1,6})\s+(.*?)\s*#*\s*$")

_EXTERNAL_SCHEMES = ("http://", "https://", "mailto:", "ftp://")


def github_slug(heading: str) -> str:
    """GitHub's heading → anchor slug transformation.

    Lowercase, backtick/asterisk markers and punctuation removed, spaces
    turned into hyphens. Underscores are *kept* — GitHub preserves them
    (``## node_count semantics`` anchors as ``#node_count-semantics``);
    stripping them would both reject correct anchors and accept wrong
    ones.
    """
    text = re.sub(r"[`*]", "", heading.strip())
    text = re.sub(r"!?\[([^\]]*)\]\([^)]*\)", r"\1", text)  # links -> text
    text = text.lower()
    text = re.sub(r"[^\w\- ]", "", text)
    text = text.replace(" ", "-")
    return text


def _strip_code_blocks(markdown: str) -> str:
    """Remove fenced code blocks so example links inside them are ignored."""
    out: list[str] = []
    in_fence = False
    for line in markdown.splitlines():
        if line.lstrip().startswith("```"):
            in_fence = not in_fence
            continue
        if not in_fence:
            out.append(line)
    return "\n".join(out)


def heading_slugs(markdown_path: Path) -> set[str]:
    """Every anchor GitHub would generate for ``markdown_path``'s headings.

    Duplicate headings get ``-1``, ``-2`` … suffixes, exactly as GitHub
    disambiguates them.
    """
    slugs: set[str] = set()
    seen: dict[str, int] = {}
    content = _strip_code_blocks(markdown_path.read_text(encoding="utf-8"))
    for line in content.splitlines():
        match = _HEADING_PATTERN.match(line)
        if not match:
            continue
        slug = github_slug(match.group(2))
        count = seen.get(slug, 0)
        seen[slug] = count + 1
        slugs.add(slug if count == 0 else f"{slug}-{count}")
    return slugs


def check_file(markdown_path: Path) -> list[str]:
    """All broken-link messages for one markdown file (empty = clean)."""
    problems: list[str] = []
    content = _strip_code_blocks(markdown_path.read_text(encoding="utf-8"))
    for target in _LINK_PATTERN.findall(content):
        if target.startswith(_EXTERNAL_SCHEMES):
            continue
        if target.startswith("#"):
            path_part, anchor = "", target[1:]
        elif "#" in target:
            path_part, anchor = target.split("#", 1)
        else:
            path_part, anchor = target, ""
        resolved = (
            markdown_path.parent / path_part if path_part else markdown_path
        )
        try:
            resolved = resolved.resolve()
        except OSError:  # pragma: no cover - unresolvable path
            problems.append(f"{markdown_path}: unresolvable link {target!r}")
            continue
        if path_part and not resolved.exists():
            problems.append(f"{markdown_path}: broken link {target!r}")
            continue
        if anchor:
            if resolved.suffix.lower() not in (".md", ".markdown"):
                problems.append(
                    f"{markdown_path}: anchor on non-markdown target {target!r}"
                )
                continue
            if anchor not in heading_slugs(resolved):
                problems.append(
                    f"{markdown_path}: missing anchor {target!r} "
                    f"(no heading slugs to {anchor!r} in {resolved.name})"
                )
    return problems


def main(argv: "list[str] | None" = None) -> int:
    """Check the given markdown files (default: the committed doc set)."""
    args = argv if argv is not None else sys.argv[1:]
    files = [Path(arg) for arg in args] if args else [
        REPO_ROOT / rel for rel in DEFAULT_DOC_SET
    ]
    problems: list[str] = []
    for path in files:
        if not path.exists():
            problems.append(f"{path}: file does not exist")
            continue
        problems.extend(check_file(path))
    for problem in problems:
        print(problem, file=sys.stderr)
    checked = ", ".join(str(p) for p in files)
    if problems:
        print(f"FAILED: {len(problems)} broken link(s) across {checked}", file=sys.stderr)
        return 1
    print(f"OK: all links resolve ({checked})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
