"""Context selection (Section 3.1) — the similarity function sigma.

Two selectors:

* :class:`RandomWalkContext` — the paper's baseline: Personalized PageRank
  over the Equation-1 weighted graph, one run per query node, summed.
* :class:`ContextRW` — the contribution: PathMining mines metapaths
  connecting the graph to the query, then every node is scored by::

      sigma(n', Q) = sum over m in M, n in Q of
          |{n ~m~> n'}| / |{n ~m~> n'' : n'' in V \\ Q}| * Pr(m)

  "sigma gives a higher score to nodes that are reachable through frequent
  metapaths connecting the query nodes or connected through many of these
  metapaths."

Both return the top-``k`` scored nodes as the context ``C`` (Definition 2:
disjoint from ``Q``, |C| = k).
"""

from __future__ import annotations

import time
from abc import ABC, abstractmethod
from collections.abc import Sequence
from dataclasses import dataclass, field

from repro.errors import QueryError
from repro.graph.model import KnowledgeGraph
from repro.graph.statistics import GraphStatistics
from repro.util.rng import RandomSource
from repro.walk.metapath import count_matching_paths
from repro.walk.pagerank import PersonalizedPageRank
from repro.walk.pathmining import MinedPaths, PathMiner


@dataclass
class ContextResult:
    """A ranked context set with its scores and provenance."""

    query: tuple[int, ...]
    ranked_nodes: list[int]
    scores: dict[int, float]
    elapsed_seconds: float
    algorithm: str
    mined_paths: MinedPaths | None = field(default=None, repr=False)

    @property
    def nodes(self) -> list[int]:
        """The context set ``C`` in rank order."""
        return self.ranked_nodes

    def top(self, k: int) -> list[int]:
        """The ``k`` best context nodes (a cutoff of the ranking)."""
        if k < 0:
            raise ValueError(f"k must be >= 0, got {k}")
        return self.ranked_nodes[:k]

    def names(self, graph: KnowledgeGraph, k: int | None = None) -> list[str]:
        """Display names of the ranked context nodes (top ``k`` when given)."""
        nodes = self.ranked_nodes if k is None else self.top(k)
        return [graph.node_name(n) for n in nodes]

    def __len__(self) -> int:
        return len(self.ranked_nodes)


def _validate_query(graph: KnowledgeGraph, query: Sequence[int]) -> tuple[int, ...]:
    if len(query) == 0:
        raise QueryError("the query set must not be empty")
    if len(set(query)) != len(query):
        raise QueryError("the query set contains duplicate nodes")
    if len(query) > 10:
        # Section 2: the query is "reasonably small (i.e., <= 10 elements)".
        raise QueryError(f"query sets are limited to 10 nodes, got {len(query)}")
    for node in query:
        if not graph.has_node(node):
            raise QueryError(f"query node id out of range: {node}")
    return tuple(query)


class ContextSelector(ABC):
    """Interface of a similarity-driven context selector."""

    name: str = "context-selector"

    def __init__(self, graph: KnowledgeGraph) -> None:
        self._graph = graph

    @property
    def graph(self) -> KnowledgeGraph:
        """The knowledge graph this selector draws context sets from."""
        return self._graph

    @abstractmethod
    def select(self, query: Sequence[int], k: int) -> ContextResult:
        """Return the top-``k`` context (Definition 2) for ``query``."""


class RandomWalkContext(ContextSelector):
    """The RandomWalk baseline: per-query-node Personalized PageRank.

    Experimental setup of the paper: power iteration, 10 iterations; the
    damping ambiguity (0.8 in Section 3.1 vs 0.2 in Section 4) is exposed
    as the ``damping`` parameter, defaulting to 0.8 (see DESIGN.md).
    """

    name = "RandomWalk"

    def __init__(
        self,
        graph: KnowledgeGraph,
        *,
        damping: float = 0.8,
        iterations: int = 10,
        tolerance: float | None = None,
        backend: str = "scipy",
        pin: bool = False,
    ) -> None:
        super().__init__(graph)
        self._pagerank = PersonalizedPageRank(
            graph,
            damping=damping,
            iterations=iterations,
            tolerance=tolerance,
            backend=backend,
            pin=pin,
        )

    def warm(self) -> "RandomWalkContext":
        """Prebuild the transition matrix (with ``pin=True``: freeze it).

        The query service calls this while re-pinning so that concurrent
        requests share one immutable matrix instead of racing to build it.
        """
        self._pagerank.transition()
        return self

    def warm_from(self, transition) -> "RandomWalkContext":
        """Freeze a transition matrix somebody else already built.

        Used by process workers (the CSR triple arrives through the shared
        segment) and by snapshot-file serving (the triple is persisted in
        the file): adopting skips the per-worker/per-boot
        ``weighted_adjacency`` rebuild entirely. Requires ``pin=True``.
        """
        self._pagerank.adopt_transition(transition)
        return self

    def frozen_transition(self):
        """The pinned transition matrix, building it if necessary.

        The export side of transition sharing: the engine publishes this
        matrix's ``(data, indices, indptr)`` triple for workers to adopt.
        """
        return self._pagerank.transition()

    def select(self, query: Sequence[int], k: int) -> ContextResult:
        """The top-``k`` PPR-ranked context for ``query`` (Section 3.1)."""
        query_tuple = _validate_query(self._graph, query)
        if k < 0:
            raise ValueError(f"k must be >= 0, got {k}")
        started = time.perf_counter()
        ranked = self._pagerank.top_k(query_tuple, k, exclude=set(query_tuple))
        elapsed = time.perf_counter() - started
        return ContextResult(
            query=query_tuple,
            ranked_nodes=[node for node, _ in ranked],
            scores={node: score for node, score in ranked},
            elapsed_seconds=elapsed,
            algorithm=self.name,
        )

    def select_many(
        self, queries: "Sequence[Sequence[int]]", k: int
    ) -> list[ContextResult]:
        """Batched :meth:`select`: one shared power iteration for all queries.

        The micro-batch entry point used by process workers. Every query's
        personalization columns join a single
        :func:`~repro.walk.pagerank.power_iteration_batch` sweep
        (:meth:`PersonalizedPageRank.top_k_many`), so the per-step sparse
        matmat cost is paid once for the whole batch. Results are
        bit-identical to calling :meth:`select` once per query.
        """
        if k < 0:
            raise ValueError(f"k must be >= 0, got {k}")
        query_tuples = [_validate_query(self._graph, query) for query in queries]
        started = time.perf_counter()
        rankings = self._pagerank.top_k_many(
            query_tuples,
            [k] * len(query_tuples),
            excludes=[set(query_tuple) for query_tuple in query_tuples],
        )
        elapsed = time.perf_counter() - started
        return [
            ContextResult(
                query=query_tuple,
                ranked_nodes=[node for node, _ in ranked],
                scores={node: score for node, score in ranked},
                elapsed_seconds=elapsed,
                algorithm=self.name,
            )
            for query_tuple, ranked in zip(query_tuples, rankings)
        ]


class ContextRW(ContextSelector):
    """The paper's context algorithm: PathMining + metapath-constrained scores.

    Parameters mirror the experimental knobs:

    * ``samples`` — PathMining walk count (the paper runs 1M on a 27M-edge
      graph; default scales with graph size, at least ``min_samples``).
    * ``max_length`` — maximum metapath length (Figure 6; paper recommends 5).
    * ``max_paths`` — keep the |M| most frequent metapaths. Table 3 sweeps
      |M| in {5, 10, 15, 20} and finds F1 insensitive; the default is 10.
      Keeping the full tail of one-off metapaths floods the context with
      noise endpoints (each rare metapath hands its entire Pr(m) to a
      handful of nodes).
    """

    name = "ContextRW"

    def __init__(
        self,
        graph: KnowledgeGraph,
        *,
        samples: int | None = None,
        max_length: int = 5,
        max_paths: int | None = 10,
        min_path_count: int = 2,
        weighted: bool = True,
        min_samples: int = 20_000,
        rng: RandomSource = None,
        statistics: GraphStatistics | None = None,
    ) -> None:
        super().__init__(graph)
        self._samples = samples
        self._min_samples = min_samples
        self._max_length = max_length
        self._max_paths = max_paths
        self._min_path_count = min_path_count
        self._miner = PathMiner(graph, weighted=weighted, rng=rng, statistics=statistics)

    def _sample_budget(self) -> int:
        if self._samples is not None:
            return self._samples
        # The paper runs PathMining 1M times on 3.3M nodes. Hitting a
        # |Q|<=10 target set is rare, so metapath counts only stabilize
        # with a sample budget well above the node count — we default to
        # 20 walks per node (and never fewer than ``min_samples``).
        return max(self._min_samples, self._graph.node_count * 20)

    def mine(self, query: Sequence[int]) -> MinedPaths:
        """Expose the PathMining stage (used by the Figure-6 benchmark).

        Returns *all* mined metapaths; the |M| cut happens in
        :meth:`select`, after filtering to query-anchored paths (see
        :meth:`score`).
        """
        query_tuple = _validate_query(self._graph, query)
        return self._miner.mine(
            query_tuple,
            samples=self._sample_budget(),
            max_length=self._max_length,
            max_paths=None,
        )

    def score(self, query: Sequence[int], mined: MinedPaths) -> dict[int, float]:
        """Compute sigma(n', Q) for every reachable node n' not in Q.

        The sigma formula divides by ``|{n ~m~> n''}|`` — it is only
        defined for metapaths with at least one match starting from a
        query node. Mined paths without any such match (walks that reached
        the query from one of its attribute values) are skipped, and the
        ``max_paths`` (|M|) cut counts *usable* paths, in mining-count
        order. Pr(m) is renormalized over the kept set.
        """
        query_tuple = _validate_query(self._graph, query)
        query_set = set(query_tuple)
        usable = self._usable_paths(
            query_tuple, query_set, mined, self._min_path_count
        )
        if not usable and self._min_path_count > 1:
            # All frequent paths were unusable — fall back to singletons
            # rather than returning an empty context.
            usable = self._usable_paths(query_tuple, query_set, mined, 1)
        total_count = sum(count for count, _ in usable)
        scores: dict[int, float] = {}
        if total_count <= 0:
            return scores
        for count, per_query in usable:
            probability = count / total_count
            for counts in per_query.values():
                denominator = sum(counts.values())
                weight = probability / denominator
                for node, node_count in counts.items():
                    scores[node] = scores.get(node, 0.0) + node_count * weight
        return scores

    def _usable_paths(
        self,
        query_tuple: tuple[int, ...],
        query_set: set[int],
        mined: MinedPaths,
        min_count: int,
    ) -> list[tuple[int, dict[int, dict[int, int]]]]:
        """Query-anchored paths with mining count >= ``min_count``.

        Paths mined only once are sampling noise (their Pr(m) estimate has
        no support); keeping them hands whole probability slots to
        arbitrary endpoint sets, so the default ``min_path_count`` is 2.
        """
        usable: list[tuple[int, dict[int, dict[int, int]]]] = []
        for scored_path in mined.paths:  # already sorted by count desc
            if self._max_paths is not None and len(usable) >= self._max_paths:
                break
            if scored_path.count < min_count:
                continue
            per_query: dict[int, dict[int, int]] = {}
            for query_node in query_tuple:
                counts = count_matching_paths(
                    self._graph, query_node, scored_path.metapath
                )
                counts = {
                    node: count
                    for node, count in counts.items()
                    if node not in query_set
                }
                if counts:
                    per_query[query_node] = counts
            if per_query:
                usable.append((scored_path.count, per_query))
        return usable

    def select(self, query: Sequence[int], k: int) -> ContextResult:
        """The top-``k`` metapath-ranked context (ContextRW, Section 3.2)."""
        query_tuple = _validate_query(self._graph, query)
        if k < 0:
            raise ValueError(f"k must be >= 0, got {k}")
        started = time.perf_counter()
        mined = self.mine(query_tuple)
        scores = self.score(query_tuple, mined)
        ranked = sorted(
            scores.items(),
            key=lambda kv: (-kv[1], self._graph.node_name(kv[0])),
        )[:k]
        elapsed = time.perf_counter() - started
        return ContextResult(
            query=query_tuple,
            ranked_nodes=[node for node, _ in ranked],
            scores={node: score for node, score in ranked},
            elapsed_seconds=elapsed,
            algorithm=self.name,
            mined_paths=mined,
        )
