"""The exact multinomial test (and its Monte-Carlo approximation).

Given a hypothesised multinomial distribution ``pi`` (the normalized
context distribution) and an observed count vector ``x`` (the query
distribution), the significance probability is::

    Pr_s(X ~ Mult(N, pi) = x) = sum over { y : Pr(y) <= Pr(x) } of Pr(y)

i.e. the total probability of outcomes at most as likely as the one
observed (an exact, two-sided-by-construction test). The paper: "In case of
large N, the exact test is impractical, a Montecarlo sampling to
approximate the final result is performed."

The characteristic score is ``MT = 1 - Pr_s`` when ``Pr_s <= alpha`` (the
hypothesis of equality is rejected) and ``0`` otherwise.

Paper cross-reference (Mottin et al., EDBT 2018):

* **Section 3.2, the multinomial test** — :func:`multinomial_test`
  (exact via full outcome enumeration, Monte-Carlo beyond
  ``max_exact_n``, matching the paper's "in case of large N ... a
  Montecarlo sampling" note); ``pi`` is the normalized *context*
  distribution, ``x`` the *query* counts.
* **The MT score** (``1 - Pr_s`` if significant at ``alpha``, else 0) —
  :attr:`MultinomialTestResult.score`; ``alpha = 0.05`` is the paper's
  Section-4 setting, and Figure 9 plots the significance probabilities
  (:attr:`MultinomialTestResult.p_value`) per candidate label.
* **delta(l, C, Q) = max over both channels** — applied one level up in
  :class:`repro.core.discrimination.MultinomialDiscriminator`, which
  runs this test on the instance and cardinality distribution pairs.

The vectorized outcome enumeration (``compositions_array`` + one matmul
log-pmf pass, PR 2) is a performance reformulation only: it scores the
same outcome set as the paper's exact test.
"""

from __future__ import annotations

import itertools
import math
import threading
from dataclasses import dataclass

import numpy as np

from repro.errors import StatisticsError
from repro.util.rng import RandomSource, ensure_numpy_rng

#: Relative tolerance when comparing outcome log-probabilities for the
#: "equally or less likely" cut. Guards against float noise making the
#: observed outcome "more likely than itself".
LOG_TIE_TOLERANCE = 1e-9


@dataclass(frozen=True)
class MultinomialTestResult:
    """Outcome of a multinomial test.

    ``p_value`` is the significance probability ``Pr_s``; ``score`` is the
    paper's ``MT`` statistic (0 when not significant, ``1 - Pr_s`` when
    significant at ``alpha``).
    """

    p_value: float
    alpha: float
    n: int
    support: int
    method: str  # "exact" | "montecarlo" | "degenerate"

    @property
    def significant(self) -> bool:
        return self.p_value <= self.alpha

    @property
    def score(self) -> float:
        return 1.0 - self.p_value if self.significant else 0.0


def _validate(pi: np.ndarray, x: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    pi = np.asarray(pi, dtype=np.float64)
    x = np.asarray(x, dtype=np.int64)
    if pi.ndim != 1 or x.ndim != 1:
        raise StatisticsError("pi and x must be 1-D vectors")
    if pi.size != x.size:
        raise StatisticsError(
            f"support mismatch: pi has {pi.size} cells, x has {x.size}"
        )
    if pi.size == 0:
        raise StatisticsError("empty support")
    if (pi < 0).any():
        raise StatisticsError("pi must be non-negative")
    total = float(pi.sum())
    if total <= 0:
        raise StatisticsError("pi must have positive mass")
    if abs(total - 1.0) > 1e-6:
        raise StatisticsError(f"pi must sum to 1 (got {total}); normalize first")
    if (x < 0).any():
        raise StatisticsError("observed counts must be non-negative")
    if total == 1.0:  # x / 1.0 == x bitwise: skip the identity pass
        return pi, x
    return pi / total, x


def log_multinomial_pmf(pi: np.ndarray, x: np.ndarray) -> float:
    """``log Pr(X = x)`` for ``X ~ Mult(sum(x), pi)``; ``-inf`` if impossible."""
    pi = np.asarray(pi, dtype=np.float64)
    x = np.asarray(x, dtype=np.int64)
    if ((pi == 0) & (x > 0)).any():
        return float("-inf")
    n = int(x.sum())
    log_p = math.lgamma(n + 1)
    for count, prob in zip(x.tolist(), pi.tolist()):
        if count:
            log_p += count * math.log(prob) - math.lgamma(count + 1)
    return log_p


def number_of_compositions(n: int, k: int) -> int:
    """Number of ways to write ``n`` as an ordered sum of ``k`` non-negatives.

    ``C(n + k - 1, k - 1)`` — the size of the exact test's outcome space.
    """
    if n < 0 or k < 1:
        raise StatisticsError(f"invalid composition parameters n={n}, k={k}")
    return math.comb(n + k - 1, k - 1)


def _iter_compositions(n: int, k: int):
    """Yield all count vectors of length ``k`` summing to ``n`` (as lists).

    The readable reference enumerator; :func:`compositions_array` is the
    vectorized equivalent the exact test actually runs on (the parity
    test in ``tests/test_stats_multinomial.py`` pins them to each other).
    """
    if k == 1:
        yield [n]
        return
    for first in range(n + 1):
        for rest in _iter_compositions(n - first, k - 1):
            yield [first] + rest


#: Rows per vectorized enumeration batch — bounds the exact test's
#: transient memory at ~batch * k * 8 bytes per in-flight test (the query
#: service runs several tests concurrently).
_COMPOSITION_BATCH_ROWS = 32_768


def _composition_batches(n: int, k: int, batch_rows: int = _COMPOSITION_BATCH_ROWS):
    """Yield the compositions of ``n`` into ``k`` cells as ``(rows, k)`` matrices.

    Stars and bars: each composition corresponds to a choice of ``k - 1``
    bar positions among ``n + k - 1`` slots; ``itertools.combinations``
    enumerates the choices at C speed and the gap widths between bars are
    the counts. Rows appear in the same lexicographic order as
    :func:`_iter_compositions`.
    """
    if n < 0 or k < 1:
        raise StatisticsError(f"invalid composition parameters n={n}, k={k}")
    if k == 1:
        yield np.array([[n]], dtype=np.int64)
        return
    bars_iter = itertools.combinations(range(n + k - 1), k - 1)
    while True:
        flat = np.fromiter(
            itertools.chain.from_iterable(itertools.islice(bars_iter, batch_rows)),
            dtype=np.int64,
        )
        if flat.size == 0:
            return
        bars = flat.reshape(-1, k - 1)
        padded = np.empty((bars.shape[0], k + 1), dtype=np.int64)
        padded[:, 0] = -1
        padded[:, 1:-1] = bars
        padded[:, -1] = n + k - 1
        yield np.diff(padded, axis=1) - 1


def compositions_array(n: int, k: int) -> np.ndarray:
    """All compositions of ``n`` into ``k`` cells as one ``(C, k)`` matrix.

    Built bottom-up over the cell count: level ``j``'s table for mass
    ``m`` is the stack of ``[first, *rest]`` blocks with ``rest`` drawn
    from level ``j - 1``'s table for ``m - first``. Each block lands with
    one numpy slice copy, so the interpreter executes O(n * k) statements
    total instead of touching every one of the ``C(n + k - 1, k - 1) * k``
    output elements (the cost profile of the tuple-based enumerators
    above). Row order matches :func:`_iter_compositions` exactly.
    """
    if n < 0 or k < 1:
        raise StatisticsError(f"invalid composition parameters n={n}, k={k}")
    tables = [np.array([[m]], dtype=np.int64) for m in range(n + 1)]
    for j in range(2, k + 1):
        masses = range(n + 1) if j < k else (n,)
        level = []
        for m in masses:
            out = np.empty((number_of_compositions(m, j), j), dtype=np.int64)
            pos = 0
            for first in range(m + 1):
                sub = tables[m - first]
                end = pos + sub.shape[0]
                out[pos:end, 0] = first
                out[pos:end, 1:] = sub
                pos = end
            level.append(out)
        tables = level
    return tables[-1]


#: Outcome tables with more int64 elements than this are streamed in
#: batches instead of materialized and cached (4M elements = 32 MB).
_OUTCOME_TABLE_MAX_ELEMENTS = 4_000_000


class _OutcomeTableCache:
    """LRU cache of ``(compositions, row lgamma sums)`` per ``(n, k)``.

    Both arrays depend only on ``(n, k)`` — not on ``pi`` — and the query
    workload hits a handful of shapes over and over (``n`` = query
    observations, ``k`` = support cells), so a long-running service
    amortizes the interpreter-bound enumeration across requests; the
    remaining per-call work (one matmul, one compare, one exp-sum) runs
    in GIL-releasing numpy kernels, which is what lets the query engine's
    thread pool scale. Eviction is *byte-budgeted* (total elements, not
    entry count): many small tables or a few big ones, never an unbounded
    aggregate. Arrays are published read-only because they are shared
    across threads.
    """

    def __init__(self, budget_elements: int = 16_000_000) -> None:  # ~128 MB
        self.budget_elements = budget_elements
        self._entries: "dict[tuple[int, int], tuple[np.ndarray, np.ndarray]]" = {}
        self._elements = 0
        self._lock = threading.Lock()

    def get(self, n: int, k: int) -> tuple[np.ndarray, np.ndarray]:
        key = (n, k)
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                # dicts preserve insertion order; re-insert = LRU refresh
                del self._entries[key]
                self._entries[key] = entry
                return entry
        outcomes = compositions_array(n, k)
        lgamma_rows = _lgamma_rows(outcomes)
        outcomes.setflags(write=False)
        lgamma_rows.setflags(write=False)
        entry = (outcomes, lgamma_rows)
        with self._lock:
            if key not in self._entries:  # racing builders: first one wins
                self._entries[key] = entry
                self._elements += outcomes.size
                while self._elements > self.budget_elements and len(self._entries) > 1:
                    old_key = next(iter(self._entries))
                    old_outcomes, _ = self._entries.pop(old_key)
                    self._elements -= old_outcomes.size
            return self._entries[key]


_outcome_tables = _OutcomeTableCache()


def _cached_outcome_table(n: int, k: int) -> tuple[np.ndarray, np.ndarray]:
    return _outcome_tables.get(n, k)


def _log_pmf_rows(pi: np.ndarray, outcomes: np.ndarray, n: int) -> np.ndarray:
    """Row-wise ``log Pr(X = outcome)`` for ``X ~ Mult(n, pi)``, ``pi > 0``.

    One lgamma-table lookup plus a matmul per batch — the numpy work
    releases the GIL, which is what lets the query service's thread pool
    scale the discrimination phase across requests.
    """
    log_pi = np.log(pi)
    return math.lgamma(n + 1) + outcomes @ log_pi - _lgamma_rows(outcomes)


def exact_multinomial_test(
    pi: "np.ndarray | list[float]",
    x: "np.ndarray | list[int]",
    *,
    alpha: float = 0.05,
) -> MultinomialTestResult:
    """Enumerate the full outcome space and sum probabilities ``<= Pr(x)``.

    Cells with ``pi == 0`` are excluded from enumeration: any outcome
    placing counts there has probability zero and cannot contribute to
    ``Pr_s``. If the *observed* vector places counts on a zero cell,
    ``Pr(x) = 0`` and ``Pr_s = 0`` (maximal significance) — the "query
    exhibits a value the context never shows" case.

    The outcome space is materialized as one matrix
    (:func:`compositions_array`) and scored in a single vectorized
    log-pmf pass instead of an interpreted per-outcome loop.
    """
    pi_arr, x_arr = _validate(np.asarray(pi), np.asarray(x))
    n = int(x_arr.sum())
    if n == 0:
        # No observations: the test is vacuous, never significant.
        return MultinomialTestResult(1.0, alpha, 0, pi_arr.size, "degenerate")
    if ((pi_arr == 0) & (x_arr > 0)).any():
        return MultinomialTestResult(0.0, alpha, n, pi_arr.size, "exact")
    return _exact_validated(pi_arr, x_arr, n, alpha)


def _exact_validated(
    pi_arr: np.ndarray, x_arr: np.ndarray, n: int, alpha: float
) -> MultinomialTestResult:
    """Exact-test core on pre-validated inputs (see :func:`multinomial_test`)."""
    support = np.flatnonzero(pi_arr > 0)
    pi_pos = pi_arr[support]
    x_pos = x_arr[support]
    log_px = log_multinomial_pmf(pi_pos, x_pos)
    threshold = log_px + LOG_TIE_TOLERANCE
    k = int(pi_pos.size)
    if number_of_compositions(n, k) * k <= _OUTCOME_TABLE_MAX_ELEMENTS:
        outcomes, lgamma_rows = _cached_outcome_table(n, k)
        log_py = math.lgamma(n + 1) + outcomes @ np.log(pi_pos) - lgamma_rows
        selected = log_py[log_py <= threshold]
        total = float(np.exp(selected).sum())
    else:  # huge outcome space: stream batches, bounding transient memory
        total = 0.0
        for outcomes in _composition_batches(n, k):
            log_py = _log_pmf_rows(pi_pos, outcomes, n)
            selected = log_py[log_py <= threshold]
            total += float(np.exp(selected).sum())
    return MultinomialTestResult(min(total, 1.0), alpha, n, pi_arr.size, "exact")


def montecarlo_multinomial_test(
    pi: "np.ndarray | list[float]",
    x: "np.ndarray | list[int]",
    *,
    alpha: float = 0.05,
    samples: int = 20_000,
    rng: RandomSource = None,
) -> MultinomialTestResult:
    """Estimate ``Pr_s`` from ``samples`` multinomial draws.

    Uses the add-one estimator ``(hits + 1) / (samples + 1)`` which is never
    zero — the exact ``Pr_s`` cannot be zero either when ``Pr(x) > 0``
    (the observed outcome itself is always counted).
    """
    if samples < 1:
        raise StatisticsError(f"samples must be >= 1, got {samples}")
    pi_arr, x_arr = _validate(np.asarray(pi), np.asarray(x))
    n = int(x_arr.sum())
    if n == 0:
        return MultinomialTestResult(1.0, alpha, 0, pi_arr.size, "degenerate")
    if ((pi_arr == 0) & (x_arr > 0)).any():
        return MultinomialTestResult(0.0, alpha, n, pi_arr.size, "montecarlo")
    generator = ensure_numpy_rng(rng)
    log_px = log_multinomial_pmf(pi_arr, x_arr)
    threshold = log_px + LOG_TIE_TOLERANCE
    draws = generator.multinomial(n, pi_arr, size=samples)
    # Vectorized log-pmf over all draws.
    with np.errstate(divide="ignore", invalid="ignore"):
        log_pi = np.where(pi_arr > 0, np.log(np.maximum(pi_arr, 1e-300)), 0.0)
    log_probs = (
        math.lgamma(n + 1)
        + draws @ log_pi
        - _lgamma_rows(draws)
    )
    hits = int(np.count_nonzero(log_probs <= threshold))
    p_value = (hits + 1) / (samples + 1)
    return MultinomialTestResult(min(p_value, 1.0), alpha, n, pi_arr.size, "montecarlo")


def _lgamma_rows(draws: np.ndarray) -> np.ndarray:
    """Row-wise ``sum(lgamma(count + 1))`` for integer draw matrices."""
    max_count = int(draws.max(initial=0))
    table = np.array([math.lgamma(i + 1) for i in range(max_count + 1)])
    return table[draws].sum(axis=1)


def multinomial_test(
    pi: "np.ndarray | list[float]",
    x: "np.ndarray | list[int]",
    *,
    alpha: float = 0.05,
    max_exact_outcomes: int = 200_000,
    samples: int = 20_000,
    rng: RandomSource = None,
) -> MultinomialTestResult:
    """Exact test when the outcome space is tractable, else Monte-Carlo.

    The outcome space has ``C(N + k - 1, k - 1)`` points for ``N``
    observations over ``k`` positive-probability cells; beyond
    ``max_exact_outcomes`` the Monte-Carlo estimator takes over (the
    paper's footnote 1).
    """
    pi_arr, x_arr = _validate(np.asarray(pi), np.asarray(x))
    n = int(x_arr.sum())
    k = int(np.count_nonzero(pi_arr > 0))
    if n == 0:
        return MultinomialTestResult(1.0, alpha, 0, pi_arr.size, "degenerate")
    if k == 0 or ((pi_arr == 0) & (x_arr > 0)).any():
        return MultinomialTestResult(0.0, alpha, n, pi_arr.size, "exact")
    if number_of_compositions(n, k) <= max_exact_outcomes:
        return _exact_validated(pi_arr, x_arr, n, alpha)
    return montecarlo_multinomial_test(
        pi_arr, x_arr, alpha=alpha, samples=samples, rng=rng
    )
