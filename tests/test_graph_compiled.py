"""Unit tests for the compiled columnar graph snapshot."""

import numpy as np
import pytest

from repro.graph.builder import GraphBuilder
from repro.graph.compiled import CompiledGraph, compile_graph
from repro.graph.model import KnowledgeGraph
from repro.graph.statistics import GraphStatistics


@pytest.fixture()
def graph():
    return (
        GraphBuilder()
        .fact("a", "r", "b")
        .fact("a", "r", "c")
        .fact("a", "s", "b")
        .fact("b", "r", "c")
        .fact("c", "s", "a")
        .build()
    )


class TestCompileGraph:
    def test_edge_rows_cover_every_edge(self, graph):
        snapshot = compile_graph(graph)
        assert snapshot.edge_count == graph.edge_count
        name = graph._label_table().name
        seen = set()
        for row in range(snapshot.edge_count):
            src = int(snapshot.sources[row])
            label = name(int(snapshot.label_ids[row]))
            dst = int(snapshot.targets[row])
            assert graph.has_edge(src, label, dst)
            seen.add((src, label, dst))
        assert len(seen) == graph.edge_count

    def test_node_slices_match_out_edges(self, graph):
        snapshot = compile_graph(graph)
        name = graph._label_table().name
        for node in graph.nodes():
            rows = snapshot.node_slice(node)
            got = {
                (name(int(l)), int(t))
                for l, t in zip(snapshot.label_ids[rows], snapshot.targets[rows])
            }
            assert got == set(graph.out_edges(node))
            assert (snapshot.sources[rows] == node).all()

    def test_rows_sorted_by_label_then_target(self, graph):
        snapshot = compile_graph(graph)
        for node in graph.nodes():
            rows = snapshot.node_slice(node)
            keys = list(
                zip(snapshot.label_ids[rows].tolist(), snapshot.targets[rows].tolist())
            )
            assert keys == sorted(keys)

    def test_out_degrees(self, graph):
        snapshot = compile_graph(graph)
        expected = [graph.out_degree(node) for node in graph.nodes()]
        assert snapshot.out_degrees().tolist() == expected

    def test_label_slices_match_edges(self, graph):
        snapshot = compile_graph(graph)
        table = graph._label_table()
        for label in graph.edge_labels:
            label_id = table.lookup(label)
            sources, targets = snapshot.edges_for_label(label_id)
            got = {(int(s), int(t)) for s, t in zip(sources, targets)}
            expected = {(e.source, e.target) for e in graph.edges(label)}
            assert got == expected

    def test_label_slice_out_of_range(self, graph):
        snapshot = compile_graph(graph)
        sources, targets = snapshot.edges_for_label(10_000)
        assert sources.size == 0 and targets.size == 0

    def test_label_weights_match_statistics(self, graph):
        snapshot = compile_graph(graph)
        stats = GraphStatistics(graph)
        table = graph._label_table()
        for label, weight in stats.label_weights().items():
            assert snapshot.label_weights[table.lookup(label)] == weight

    def test_out_weight_sums_edge_weights(self, graph):
        snapshot = compile_graph(graph)
        for node in graph.nodes():
            rows = snapshot.node_slice(node)
            expected = snapshot.label_weights[snapshot.label_ids[rows]].sum()
            assert snapshot.out_weight[node] == pytest.approx(expected)

    def test_empty_graph(self):
        snapshot = compile_graph(KnowledgeGraph())
        assert snapshot.node_count == 0
        assert snapshot.edge_count == 0
        assert snapshot.indptr.tolist() == [0]

    def test_nodes_without_edges(self):
        graph = KnowledgeGraph()
        graph.add_node("loner")
        snapshot = compile_graph(graph)
        assert snapshot.out_degrees().tolist() == [0]
        assert snapshot.out_weight.tolist() == [0.0]

    def test_arrays_are_read_only(self, graph):
        snapshot = compile_graph(graph)
        with pytest.raises(ValueError):
            snapshot.targets[0] = 0


class TestGatherRows:
    def test_gather_matches_slices(self, graph):
        snapshot = compile_graph(graph)
        members = np.array([2, 0], dtype=np.int64)
        rows, owners = snapshot.gather_rows(members)
        # Rows come out member-major, in slice order.
        indptr = snapshot.indptr.tolist()
        expected_rows = list(range(indptr[2], indptr[3])) + list(
            range(indptr[0], indptr[1])
        )
        assert rows.tolist() == expected_rows
        assert owners.tolist() == [0] * graph.out_degree(2) + [1] * graph.out_degree(0)

    def test_gather_with_duplicates(self, graph):
        snapshot = compile_graph(graph)
        rows, owners = snapshot.gather_rows(np.array([0, 0], dtype=np.int64))
        degree = graph.out_degree(0)
        assert rows.shape[0] == 2 * degree
        assert owners.tolist() == [0] * degree + [1] * degree

    def test_gather_empty(self, graph):
        snapshot = compile_graph(graph)
        rows, owners = snapshot.gather_rows(np.empty(0, dtype=np.int64))
        assert rows.size == 0 and owners.size == 0


class TestSnapshotCache:
    def test_cache_reuses_snapshot(self, graph):
        assert graph._compiled() is graph._compiled()

    def test_cache_invalidated_by_mutation(self, graph):
        first = graph._compiled()
        graph.add_edge("a", "r", "d")
        second = graph._compiled()
        assert second is not first
        assert second.version == graph.version
        assert second.edge_count == graph.edge_count

    def test_snapshot_type(self, graph):
        assert isinstance(graph._compiled(), CompiledGraph)


class TestPublicPinning:
    def test_public_accessor_matches_internal(self, graph):
        assert graph.compiled() is graph._compiled()

    def test_covers(self, graph):
        snapshot = graph.compiled()
        assert snapshot.covers(list(graph.nodes()))
        assert snapshot.covers([])
        assert not snapshot.covers([graph.node_count])
        assert not snapshot.covers([-1])
        new_id = graph.add_node("zz_extra")
        assert not snapshot.covers([new_id])
        assert graph.compiled().covers([new_id])

    def test_incident_label_ids_match_live_labels(self, graph):
        snapshot = graph.compiled()
        table = graph._label_table()
        for nodes in ([0], [0, 1], list(graph.nodes())):
            from_snapshot = {
                table.name(int(i)) for i in snapshot.incident_label_ids(nodes)
            }
            assert from_snapshot == graph.incident_labels(nodes)

    def test_compile_is_concurrency_safe(self, graph):
        import threading

        graph.add_edge("zz_c1", "r", "zz_c2")  # invalidate the cache
        snapshots = []
        barrier = threading.Barrier(4)

        def compiler():
            barrier.wait()
            snapshots.append(graph.compiled())

        threads = [threading.Thread(target=compiler) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len({id(s) for s in snapshots}) == 1  # one compile, shared
