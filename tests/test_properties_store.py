"""Property-based tests (hypothesis) for the triple store.

Invariants: the three indexes always agree, count() == len(match()), and
add/remove round-trips restore the previous state.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.store.terms import IRI
from repro.store.triples import Triple
from repro.store.triplestore import TripleStore

# small vocabularies force collisions, which is where index bugs live
subjects = st.sampled_from([IRI(f"s{i}") for i in range(5)])
predicates = st.sampled_from([IRI(f"p{i}") for i in range(3)])
objects = st.sampled_from([IRI(f"o{i}") for i in range(5)])
triples = st.builds(Triple, subjects, predicates, objects)


@given(st.lists(triples, max_size=40))
@settings(max_examples=60, deadline=None)
def test_store_size_equals_distinct_triples(batch):
    store = TripleStore()
    store.add_all(batch)
    assert len(store) == len(set(batch))


@given(st.lists(triples, max_size=40))
@settings(max_examples=60, deadline=None)
def test_indexes_agree_on_every_pattern(batch):
    store = TripleStore(batch)
    distinct = set(batch)
    for s in {t.subject for t in distinct} | {IRI("unseen")}:
        expected = {t for t in distinct if t.subject == s}
        assert set(store.match(subject=s)) == expected
        assert store.count(subject=s) == len(expected)
    for p in {t.predicate for t in distinct}:
        expected = {t for t in distinct if t.predicate == p}
        assert set(store.match(predicate=p)) == expected
        assert store.count(predicate=p) == len(expected)
    for o in {t.object for t in distinct}:
        expected = {t for t in distinct if t.object == o}
        assert set(store.match(obj=o)) == expected
        assert store.count(obj=o) == len(expected)


@given(st.lists(triples, max_size=30), st.lists(triples, max_size=15))
@settings(max_examples=60, deadline=None)
def test_remove_restores_membership(batch, removals):
    store = TripleStore(batch)
    present = set(batch)
    for triple in removals:
        removed = store.remove(triple)
        assert removed == (triple in present)
        present.discard(triple)
    assert set(store.match()) == present
    assert len(store) == len(present)


@given(st.lists(triples, min_size=1, max_size=30))
@settings(max_examples=60, deadline=None)
def test_full_bound_match_is_membership(batch):
    store = TripleStore(batch)
    for triple in batch:
        assert triple in store
        assert list(store.match(triple.subject, triple.predicate, triple.object)) == [
            triple
        ]


@given(st.lists(triples, max_size=30))
@settings(max_examples=40, deadline=None)
def test_ntriples_round_trip(batch):
    from repro.store.ntriples import parse_ntriples, serialize_ntriples

    distinct = sorted(set(batch))
    text = serialize_ntriples(distinct)
    assert list(parse_ntriples(text)) == distinct
