"""The :class:`KnowledgeGraph` — Definition 1 of the paper.

Nodes carry a label ``phi(v)`` (their name: an entity identifier or an
attribute value such as ``"1954"``); edges carry a label ``psi(e)`` from the
edge-label vocabulary ``L``. The graph is a directed multigraph in the sense
that a node may have many same-labelled edges to *different* targets;
duplicate ``(src, label, dst)`` statements are idempotent, like triples.

By default :meth:`KnowledgeGraph.add_edge` also inserts the reverse edge
with the inverse label (the paper's closure assumption); pass
``add_inverse=False`` to manage reverse edges manually.
"""

from __future__ import annotations

import threading
from collections.abc import Iterable, Iterator
from dataclasses import dataclass

from repro.errors import EdgeLabelNotFoundError, NodeNotFoundError
from repro.graph.labels import TYPE_LABEL, LabelTable, inverse_label

#: A node reference accepted by the public API: dense id or node name.
NodeRef = "int | str"


@dataclass(frozen=True, slots=True)
class Edge:
    """A directed labelled edge, with labels resolved to strings."""

    source: int
    label: str
    target: int


class KnowledgeGraph:
    """Directed labelled graph with dense node ids and interned edge labels.

    >>> g = KnowledgeGraph()
    >>> merkel = g.add_node("Angela_Merkel")
    >>> germany = g.add_node("Germany")
    >>> g.add_edge(merkel, "leaderOf", germany)
    True
    >>> g.has_edge(germany, "leaderOf_inv", merkel)   # inverse closure
    True
    >>> g.edge_count
    2
    """

    def __init__(self, name: str = "knowledge-graph") -> None:
        self.name = name
        self._names: list[str] = []
        self._name_to_id: dict[str, int] = {}
        self._labels = LabelTable()
        # _out[v][label_id] -> set of target node ids
        self._out: list[dict[int, set[int]]] = []
        # _in[v][label_id] -> set of source node ids (label of the *forward* edge)
        self._in: list[dict[int, set[int]]] = []
        self._edge_count = 0
        self._label_edge_counts: dict[int, int] = {}
        self._version = 0  # bumped on mutation; caches key on this
        self._compiled_snapshot = None  # CompiledGraph cache, keyed on _version
        self._compile_lock = threading.Lock()  # one compile per version

    # -- nodes ------------------------------------------------------------

    def add_node(self, name: str) -> int:
        """Insert a node named ``name`` (idempotent); return its id."""
        if not isinstance(name, str) or not name:
            raise ValueError(f"node name must be a non-empty string, got {name!r}")
        existing = self._name_to_id.get(name)
        if existing is not None:
            return existing
        node_id = len(self._names)
        self._names.append(name)
        self._name_to_id[name] = node_id
        self._out.append({})
        self._in.append({})
        self._version += 1
        return node_id

    def node_id(self, ref: NodeRef) -> int:
        """Resolve a node reference (id or name) to its id."""
        if isinstance(ref, str):
            node_id = self._name_to_id.get(ref)
            if node_id is None:
                raise NodeNotFoundError(ref)
            return node_id
        if not isinstance(ref, int) or isinstance(ref, bool):
            raise TypeError(f"node reference must be int or str, got {type(ref).__name__}")
        if not 0 <= ref < len(self._names):
            raise NodeNotFoundError(ref)
        return ref

    def node_ids(self, refs: Iterable[NodeRef]) -> list[int]:
        """Resolve many node references at once."""
        return [self.node_id(r) for r in refs]

    def node_name(self, node_id: int) -> str:
        """phi(v): the label of node ``node_id``."""
        if not 0 <= node_id < len(self._names):
            raise NodeNotFoundError(node_id)
        return self._names[node_id]

    def has_node(self, ref: NodeRef) -> bool:
        """Whether ``ref`` (an id or an exact name) names a node."""
        if isinstance(ref, str):
            return ref in self._name_to_id
        return isinstance(ref, int) and 0 <= ref < len(self._names)

    @property
    def node_count(self) -> int:
        """|V| — node ids are dense, so also the next id to be allocated."""
        return len(self._names)

    def nodes(self) -> range:
        """All node ids (dense, so a range)."""
        return range(len(self._names))

    def node_names(self) -> Iterator[str]:
        """Iterate phi over all nodes, in id order (Definition 1)."""
        return iter(self._names)

    # -- edges ------------------------------------------------------------

    def add_edge(
        self, source: NodeRef, label: str, target: NodeRef, *, add_inverse: bool = True
    ) -> bool:
        """Insert the edge ``source -label-> target``.

        Unknown node *names* are created on the fly; unknown node *ids*
        raise. Returns ``True`` if the forward edge was new. When
        ``add_inverse`` (default), the reverse edge with the inverse label is
        inserted too, fulfilling the closure assumption of Section 2.
        """
        src = self.add_node(source) if isinstance(source, str) else self.node_id(source)
        dst = self.add_node(target) if isinstance(target, str) else self.node_id(target)
        added = self._insert(src, label, dst)
        if add_inverse:
            self._insert(dst, inverse_label(label), src)
        return added

    def _insert(self, src: int, label: str, dst: int) -> bool:
        label_id = self._labels.intern(label)
        targets = self._out[src].setdefault(label_id, set())
        if dst in targets:
            return False
        targets.add(dst)
        self._in[dst].setdefault(label_id, set()).add(src)
        self._edge_count += 1
        self._label_edge_counts[label_id] = self._label_edge_counts.get(label_id, 0) + 1
        self._version += 1
        return True

    def remove_edge(
        self, source: NodeRef, label: str, target: NodeRef, *, remove_inverse: bool = True
    ) -> bool:
        """Delete the edge (and, by default, its inverse); ``True`` if present."""
        src = self.node_id(source)
        dst = self.node_id(target)
        removed = self._delete(src, label, dst)
        if remove_inverse:
            self._delete(dst, inverse_label(label), src)
        return removed

    def _delete(self, src: int, label: str, dst: int) -> bool:
        label_id = self._labels.lookup(label)
        if label_id is None:
            return False
        targets = self._out[src].get(label_id)
        if targets is None or dst not in targets:
            return False
        targets.discard(dst)
        if not targets:
            del self._out[src][label_id]
        sources = self._in[dst].get(label_id)
        if sources is not None:
            sources.discard(src)
            if not sources:
                del self._in[dst][label_id]
        self._edge_count -= 1
        remaining = self._label_edge_counts.get(label_id, 0) - 1
        if remaining > 0:
            self._label_edge_counts[label_id] = remaining
        else:
            self._label_edge_counts.pop(label_id, None)
        self._version += 1
        return True

    def has_edge(self, source: NodeRef, label: str, target: NodeRef) -> bool:
        """Whether the exact ``(source, label, target)`` edge exists."""
        try:
            src = self.node_id(source)
            dst = self.node_id(target)
        except NodeNotFoundError:
            return False
        label_id = self._labels.lookup(label)
        if label_id is None:
            return False
        return dst in self._out[src].get(label_id, ())

    @property
    def edge_count(self) -> int:
        """|E| — counting reverse edges, per the closure assumption."""
        return self._edge_count

    def edges(self, label: str | None = None) -> Iterator[Edge]:
        """Iterate edges, optionally restricted to one label."""
        if label is not None:
            label_id = self._labels.lookup(label)
            if label_id is None:
                return
            for src in self.nodes():
                for dst in self._out[src].get(label_id, ()):
                    yield Edge(src, label, dst)
            return
        name = self._labels.name
        for src in self.nodes():
            for label_id, targets in self._out[src].items():
                label_name = name(label_id)
                for dst in targets:
                    yield Edge(src, label_name, dst)

    # -- adjacency --------------------------------------------------------

    def neighbors(
        self, node: NodeRef, label: str | None = None, *, direction: str = "out"
    ) -> Iterator[int]:
        """Iterate neighbour ids along ``direction`` ('out' | 'in' | 'both')."""
        node_id = self.node_id(node)
        if direction not in ("out", "in", "both"):
            raise ValueError(f"direction must be out/in/both, got {direction!r}")
        if label is None:
            if direction in ("out", "both"):
                for targets in self._out[node_id].values():
                    yield from targets
            if direction in ("in", "both"):
                for sources in self._in[node_id].values():
                    yield from sources
            return
        label_id = self._labels.lookup(label)
        if label_id is None:
            return
        if direction in ("out", "both"):
            yield from self._out[node_id].get(label_id, ())
        if direction in ("in", "both"):
            yield from self._in[node_id].get(label_id, ())

    def out_edges(self, node: NodeRef) -> Iterator[tuple[str, int]]:
        """Iterate ``(label, target)`` pairs of out-edges."""
        node_id = self.node_id(node)
        name = self._labels.name
        for label_id, targets in self._out[node_id].items():
            label_name = name(label_id)
            for dst in targets:
                yield (label_name, dst)

    def out_degree(self, node: NodeRef, label: str | None = None) -> int:
        """Out-edges of ``node`` (restricted to ``label`` when given)."""
        node_id = self.node_id(node)
        if label is None:
            return sum(len(t) for t in self._out[node_id].values())
        label_id = self._labels.lookup(label)
        if label_id is None:
            return 0
        return len(self._out[node_id].get(label_id, ()))

    def in_degree(self, node: NodeRef, label: str | None = None) -> int:
        """In-edges of ``node`` (restricted to ``label`` when given)."""
        node_id = self.node_id(node)
        if label is None:
            return sum(len(s) for s in self._in[node_id].values())
        label_id = self._labels.lookup(label)
        if label_id is None:
            return 0
        return len(self._in[node_id].get(label_id, ()))

    def out_labels(self, node: NodeRef) -> set[str]:
        """psi-labels appearing on out-edges of ``node``."""
        node_id = self.node_id(node)
        name = self._labels.name
        return {name(label_id) for label_id in self._out[node_id]}

    def incident_labels(self, nodes: Iterable[NodeRef]) -> set[str]:
        """``L | nodes`` — labels on edges leaving any of ``nodes``.

        Definition 3 restricts candidate characteristics to this set. Thanks
        to the inverse closure, out-labels cover incoming relations too.
        """
        out: set[str] = set()
        for node in nodes:
            out |= self.out_labels(node)
        return out

    # -- labels -----------------------------------------------------------

    @property
    def edge_labels(self) -> list[str]:
        """The vocabulary ``L`` (labels with at least one live edge)."""
        return [
            self._labels.name(label_id) for label_id in self._label_edge_counts
        ]

    def has_edge_label(self, label: str) -> bool:
        """Whether any *live* edge carries ``label`` (interned isn't enough)."""
        label_id = self._labels.lookup(label)
        return label_id is not None and label_id in self._label_edge_counts

    def edge_count_by_label(self, label: str) -> int:
        """|E_l| — the number of edges carrying ``label``."""
        label_id = self._labels.lookup(label)
        if label_id is None:
            return 0
        return self._label_edge_counts.get(label_id, 0)

    def label_frequency(self, label: str) -> float:
        """|E_l| / |E| — the frequency used by Equation 1."""
        label_id = self._labels.lookup(label)
        if label_id is None or label_id not in self._label_edge_counts:
            raise EdgeLabelNotFoundError(label)
        if self._edge_count == 0:  # pragma: no cover - unreachable with live label
            return 0.0
        return self._label_edge_counts[label_id] / self._edge_count

    def label_weight(self, label: str) -> float:
        """``1 - |E_l|/|E|`` — the informativeness weight of Equation 1."""
        return 1.0 - self.label_frequency(label)

    # -- types --------------------------------------------------------------

    def types_of(self, node: NodeRef) -> set[str]:
        """Names of the direct type nodes of ``node`` (via ``type`` edges)."""
        return {self.node_name(t) for t in self.neighbors(node, TYPE_LABEL)}

    def instances_of(self, type_node: NodeRef) -> Iterator[int]:
        """Nodes whose ``type`` edge points at ``type_node``."""
        return self.neighbors(type_node, TYPE_LABEL, direction="in")

    # -- misc ---------------------------------------------------------------

    @property
    def version(self) -> int:
        """Mutation counter; caches keyed on it invalidate automatically."""
        return self._version

    def compiled(self):
        """Pin the current columnar snapshot (:class:`~repro.graph.compiled.CompiledGraph`).

        The returned snapshot is immutable and belongs to the current
        :attr:`version`: readers holding it keep a consistent view of the
        adjacency even while writers keep mutating the graph. Concurrent
        calls share one compile per version (serialized by a lock); the
        query service pins one snapshot per request through this accessor.
        """
        return self._compiled()

    def summary(self) -> str:
        """One-line |V|/|E|/|L| digest for logs and the CLI."""
        return (
            f"{self.name}: |V|={self.node_count}, |E|={self.edge_count}, "
            f"|L|={len(self._label_edge_counts)}"
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"KnowledgeGraph({self.summary()!r})"

    def __len__(self) -> int:
        return self.node_count

    # -- internal fast paths (used by repro.walk; ids only, no decoding) ----

    def _out_adjacency(self) -> list[dict[int, set[int]]]:
        return self._out

    def _label_table(self) -> LabelTable:
        return self._labels

    def _node_names_list(self) -> list[str]:
        return self._names

    def _compiled(self):
        """The columnar CSR snapshot of this graph (version-keyed cache).

        Compiled lazily on first use and invalidated automatically when
        :attr:`version` moves; see :mod:`repro.graph.compiled`. The
        returned arrays are read-only and shared — do not mutate.
        Double-checked locking keeps concurrent readers from compiling
        the same version twice (compiles are idempotent, just wasteful).
        """
        snapshot = self._compiled_snapshot
        if snapshot is None or snapshot.version != self._version:
            from repro.graph.compiled import compile_graph

            with self._compile_lock:
                snapshot = self._compiled_snapshot
                if snapshot is None or snapshot.version != self._version:
                    snapshot = compile_graph(self)
                    self._compiled_snapshot = snapshot
        return snapshot
