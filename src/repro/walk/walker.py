"""Single-step random walkers.

Section 3.1: "In the traditional random walk model, a random walker chooses
one of the outgoing edges from a node with uniform probability. Instead of
uniform probability, we favor choices which are more informative in terms
of edge label frequency: the lower the frequency the more informative the
label." Each out-edge with label ``l`` is drawn with probability
proportional to ``1 - |E_l|/|E|`` (the same weight as Equation 1).
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from itertools import accumulate

from repro.graph.model import KnowledgeGraph
from repro.graph.statistics import GraphStatistics
from repro.util.rng import RandomSource, ensure_rng


@dataclass(frozen=True, slots=True)
class WalkRecord:
    """The outcome of one random walk."""

    nodes: tuple[int, ...]
    labels: tuple[str, ...]

    @property
    def length(self) -> int:
        """Number of edges traversed."""
        return len(self.labels)

    @property
    def start(self) -> int:
        return self.nodes[0]

    @property
    def end(self) -> int:
        return self.nodes[-1]


class _NodeAlternatives:
    """Pre-computed out-edge alternatives of one node for O(log d) sampling."""

    __slots__ = ("labels", "targets", "cumulative")

    def __init__(self, labels: list[str], targets: list[int], weights: list[float]):
        self.labels = labels
        self.targets = targets
        self.cumulative = list(accumulate(weights))

    def sample(self, rng) -> tuple[str, int] | None:
        total = self.cumulative[-1] if self.cumulative else 0.0
        if total <= 0:
            return None
        point = rng.random() * total
        index = bisect_right(self.cumulative, point)
        if index >= len(self.targets):  # numeric edge: point == total
            index = len(self.targets) - 1
        return self.labels[index], self.targets[index]


class RandomWalker:
    """Performs label-informativeness-weighted (or uniform) random walks.

    Per-node alternative tables are cached and invalidated when the graph
    mutates, so repeated walks (PathMining runs tens of thousands) stay
    cheap.
    """

    def __init__(
        self,
        graph: KnowledgeGraph,
        *,
        weighted: bool = True,
        rng: RandomSource = None,
        statistics: GraphStatistics | None = None,
    ) -> None:
        self._graph = graph
        self._weighted = weighted
        self._rng = ensure_rng(rng)
        self._stats = statistics or GraphStatistics(graph)
        self._cache: dict[int, _NodeAlternatives | None] = {}
        self._version = -1

    @property
    def graph(self) -> KnowledgeGraph:
        return self._graph

    def _alternatives(self, node: int) -> _NodeAlternatives | None:
        if self._graph.version != self._version:
            self._cache.clear()
            self._version = self._graph.version
        cached = self._cache.get(node, _SENTINEL)
        if cached is not _SENTINEL:
            return cached  # type: ignore[return-value]
        labels: list[str] = []
        targets: list[int] = []
        weights: list[float] = []
        weight_of = self._stats.weight if self._weighted else None
        for label, target in self._graph.out_edges(node):
            labels.append(label)
            targets.append(target)
            weights.append(weight_of(label) if weight_of else 1.0)
        alternatives = _NodeAlternatives(labels, targets, weights) if targets else None
        self._cache[node] = alternatives
        return alternatives

    def step(self, node: int) -> tuple[str, int] | None:
        """One step from ``node``; ``None`` when the node is a dead end."""
        alternatives = self._alternatives(node)
        if alternatives is None:
            return None
        return alternatives.sample(self._rng)

    def walk(
        self,
        start: int,
        max_length: int,
        *,
        stop_at: "set[int] | frozenset[int] | None" = None,
    ) -> WalkRecord:
        """Walk up to ``max_length`` edges from ``start``.

        If ``stop_at`` is given, the walk ends as soon as it reaches one of
        those nodes (the PathMining termination rule).
        """
        if max_length < 0:
            raise ValueError(f"max_length must be >= 0, got {max_length}")
        nodes = [start]
        labels: list[str] = []
        current = start
        for _ in range(max_length):
            step = self.step(current)
            if step is None:
                break
            label, target = step
            labels.append(label)
            nodes.append(target)
            current = target
            if stop_at is not None and current in stop_at:
                break
        return WalkRecord(tuple(nodes), tuple(labels))


_SENTINEL = object()
