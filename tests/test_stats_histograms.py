"""Unit tests for count-map alignment utilities."""

import numpy as np
import pytest

from repro.errors import StatisticsError
from repro.stats.histograms import (
    align_count_maps,
    cardinality_histogram,
    counts_to_probabilities,
)


class TestAlign:
    def test_union_support(self):
        support, x, y = align_count_maps({"a": 1}, {"b": 3})
        assert set(support) == {"a", "b"}
        assert x.sum() == 1 and y.sum() == 3

    def test_query_zero_where_context_only(self):
        support, x, y = align_count_maps({}, {"ctx": 2})
        assert list(x) == [0]
        assert list(y) == [2]

    def test_default_order_context_dominant_first(self):
        support, _x, _y = align_count_maps(
            {"rare": 1}, {"big": 10, "mid": 5, "rare": 0}
        )
        assert support[0] == "big"
        assert support[1] == "mid"

    def test_deterministic_tie_break(self):
        support, _x, _y = align_count_maps({}, {"b": 1, "a": 1})
        assert support == ["a", "b"]

    def test_explicit_order(self):
        support, x, y = align_count_maps(
            {"a": 1}, {"b": 2}, order=["b", "a", "unused"]
        )
        assert support == ["b", "a"]
        assert list(x) == [0, 1]

    def test_explicit_order_missing_value_rejected(self):
        with pytest.raises(StatisticsError):
            align_count_maps({"a": 1}, {"b": 2}, order=["a"])

    def test_negative_count_rejected(self):
        with pytest.raises(StatisticsError):
            align_count_maps({"a": -1}, {})

    def test_non_integer_count_rejected(self):
        with pytest.raises(StatisticsError):
            align_count_maps({"a": 1.5}, {})  # type: ignore[dict-item]

    def test_same_length_vectors(self):
        support, x, y = align_count_maps({"a": 1, "c": 2}, {"b": 3})
        assert len(support) == len(x) == len(y) == 3


class TestCountsToProbabilities:
    def test_normalization(self):
        probs = counts_to_probabilities(np.array([1, 3]))
        assert probs.sum() == pytest.approx(1.0)
        assert probs[1] == pytest.approx(0.75)

    def test_all_zero_rejected(self):
        with pytest.raises(StatisticsError):
            counts_to_probabilities(np.array([0, 0]))

    def test_negative_rejected(self):
        with pytest.raises(StatisticsError):
            counts_to_probabilities(np.array([-1, 2]))

    def test_empty_rejected(self):
        with pytest.raises(StatisticsError):
            counts_to_probabilities(np.array([]))


class TestCardinalityHistogram:
    def test_counts(self):
        assert cardinality_histogram([0, 1, 1, 3]) == {0: 1, 1: 2, 3: 1}

    def test_empty(self):
        assert cardinality_histogram([]) == {}

    def test_negative_rejected(self):
        with pytest.raises(StatisticsError):
            cardinality_histogram([-1])
