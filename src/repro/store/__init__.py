"""In-memory triple store substrate.

The original system loads YAGO / LinkedMDB into an Apache Jena triple store
"to perform quick traversals on the graph without loading it into main
memory". This package is the stand-in: a dictionary-encoded, triple-indexed
in-memory store with the same access paths (lookup by any combination of
subject / predicate / object), N-Triples and YAGO-TSV IO, and a small
basic-graph-pattern query evaluator.
"""

from repro.store.dictionary import TermDictionary
from repro.store.ntriples import parse_ntriples, serialize_ntriples
from repro.store.query import BGPQuery, TriplePattern, Variable
from repro.store.sparql import SelectQuery, parse_select, select
from repro.store.terms import IRI, Literal, Term
from repro.store.triples import Triple
from repro.store.triplestore import TripleStore
from repro.store.tsv import parse_tsv_facts, serialize_tsv_facts

__all__ = [
    "BGPQuery",
    "IRI",
    "Literal",
    "SelectQuery",
    "Term",
    "TermDictionary",
    "Triple",
    "TriplePattern",
    "TripleStore",
    "Variable",
    "parse_ntriples",
    "parse_select",
    "parse_tsv_facts",
    "select",
    "serialize_ntriples",
    "serialize_tsv_facts",
]
