"""Unit tests for context selection (Section 3.1)."""

import pytest

from repro.core.context import ContextResult, ContextRW, RandomWalkContext
from repro.errors import QueryError
from repro.graph.builder import GraphBuilder


@pytest.fixture()
def graph():
    builder = GraphBuilder()
    for i in range(10):
        builder.typed(f"actor{i}", "actor")
        builder.fact(f"actor{i}", "actedIn", "blockbuster")
    for i in range(5):
        builder.typed(f"politician{i}", "politician")
        builder.fact(f"politician{i}", "leaderOf", f"country{i}")
    builder.fact("actor0", "isMarriedTo", "politician0")
    return builder.build()


class TestContextResult:
    def test_top_cutoff(self):
        result = ContextResult(
            query=(0,),
            ranked_nodes=[1, 2, 3],
            scores={1: 3.0, 2: 2.0, 3: 1.0},
            elapsed_seconds=0.1,
            algorithm="x",
        )
        assert result.top(2) == [1, 2]
        assert result.top(10) == [1, 2, 3]
        assert len(result) == 3
        with pytest.raises(ValueError):
            result.top(-1)

    def test_names(self, graph):
        result = ContextResult(
            query=(graph.node_id("actor0"),),
            ranked_nodes=[graph.node_id("actor1")],
            scores={},
            elapsed_seconds=0.0,
            algorithm="x",
        )
        assert result.names(graph) == ["actor1"]


class TestQueryValidation:
    @pytest.mark.parametrize("selector_cls", [RandomWalkContext, ContextRW])
    def test_empty_query(self, graph, selector_cls):
        selector = selector_cls(graph)
        with pytest.raises(QueryError):
            selector.select([], 5)

    @pytest.mark.parametrize("selector_cls", [RandomWalkContext, ContextRW])
    def test_duplicate_query(self, graph, selector_cls):
        selector = selector_cls(graph)
        with pytest.raises(QueryError):
            selector.select([0, 0], 5)

    @pytest.mark.parametrize("selector_cls", [RandomWalkContext, ContextRW])
    def test_oversized_query(self, graph, selector_cls):
        selector = selector_cls(graph)
        with pytest.raises(QueryError):
            selector.select(list(range(11)), 5)

    @pytest.mark.parametrize("selector_cls", [RandomWalkContext, ContextRW])
    def test_unknown_node(self, graph, selector_cls):
        selector = selector_cls(graph)
        with pytest.raises(QueryError):
            selector.select([10_000], 5)

    def test_negative_k(self, graph):
        with pytest.raises(ValueError):
            RandomWalkContext(graph).select([0], -1)
        with pytest.raises(ValueError):
            ContextRW(graph, rng=1).select([0], -1)


class TestRandomWalkContext:
    def test_context_excludes_query(self, graph):
        query = [graph.node_id("actor0"), graph.node_id("actor1")]
        result = RandomWalkContext(graph).select(query, 8)
        assert not set(result.nodes) & set(query)

    def test_context_size_respected(self, graph):
        result = RandomWalkContext(graph).select([graph.node_id("actor0")], 3)
        assert len(result) == 3

    def test_scores_descending(self, graph):
        result = RandomWalkContext(graph).select([graph.node_id("actor0")], 10)
        scores = [result.scores[n] for n in result.nodes]
        assert scores == sorted(scores, reverse=True)

    def test_algorithm_name(self, graph):
        result = RandomWalkContext(graph).select([0], 2)
        assert result.algorithm == "RandomWalk"


class TestContextRW:
    def test_context_excludes_query(self, graph):
        query = [graph.node_id("actor0"), graph.node_id("actor1")]
        result = ContextRW(graph, rng=3, samples=5000).select(query, 8)
        assert not set(result.nodes) & set(query)

    def test_co_actors_rank_high(self, graph):
        query = [graph.node_id("actor0"), graph.node_id("actor1")]
        result = ContextRW(graph, rng=3, samples=8000).select(query, 8)
        names = result.names(graph)
        co_actors = [n for n in names if n.startswith("actor")]
        assert len(co_actors) >= len(names) / 2

    def test_mined_paths_attached(self, graph):
        result = ContextRW(graph, rng=3, samples=4000).select([0], 5)
        assert result.mined_paths is not None
        assert result.algorithm == "ContextRW"

    def test_deterministic_under_seed(self, graph):
        query = [graph.node_id("actor0")]
        a = ContextRW(graph, rng=17, samples=4000).select(query, 6)
        b = ContextRW(graph, rng=17, samples=4000).select(query, 6)
        assert a.ranked_nodes == b.ranked_nodes

    def test_singleton_fallback_when_all_paths_rare(self, graph):
        # With a tiny sample budget most paths are singletons; the selector
        # must fall back rather than return an empty context.
        result = ContextRW(graph, rng=3, samples=60, min_samples=60).select(
            [graph.node_id("actor0")], 5
        )
        # either some context or genuinely nothing mined — never an error
        assert isinstance(result.ranked_nodes, list)

    def test_score_skips_non_replayable_paths(self, graph):
        selector = ContextRW(graph, rng=3, samples=6000)
        query = [graph.node_id("actor0")]
        mined = selector.mine(query)
        scores = selector.score(query, mined)
        assert all(node not in query for node in scores)

    def test_sample_budget_explicit(self, graph):
        selector = ContextRW(graph, samples=123)
        assert selector._sample_budget() == 123

    def test_sample_budget_scales_with_nodes(self, graph):
        selector = ContextRW(graph, min_samples=10)
        assert selector._sample_budget() == max(10, graph.node_count * 20)
