"""`NCEngine` — a thread-safe FindNC query engine over one live graph.

The engine turns the library pipeline into a servable primitive:

* **Snapshot pinning.** Every request pins the graph's compiled columnar
  snapshot (:meth:`KnowledgeGraph.compiled`) together with a frozen
  PageRank selector (transition matrix built once per graph version) and
  a shared entity index. Requests then run lock-free against immutable
  state while writers keep mutating the graph; when
  :attr:`KnowledgeGraph.version` advances, the next request transparently
  re-pins.
* **Version-keyed result cache.** Results are cached under
  ``(graph.version, frozenset(query_ids), context_size, alpha,
  discriminator_params)`` in a :class:`~repro.service.cache.ResultCache`
  LRU — a mutation makes old entries unreachable instantly, and re-pinning
  purges them.
* **Request executor with single-flight coalescing.** Queries run on a
  bounded :class:`~concurrent.futures.ThreadPoolExecutor`; concurrent
  identical requests share one in-flight computation instead of
  recomputing a hot query N times.

Determinism: each computation derives its RNG seed from the cache key, so
identical requests produce identical results whether or not they hit the
cache.

Cached :class:`~repro.core.findnc.FindNCResult` objects are shared across
requests — treat them as read-only.
"""

from __future__ import annotations

import hashlib
import threading
import time
from collections.abc import Sequence
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass

from repro.core.context import RandomWalkContext
from repro.core.discrimination import MultinomialDiscriminator
from repro.core.findnc import FindNC, FindNCResult
from repro.errors import QueryError
from repro.graph.compiled import CompiledGraph
from repro.graph.model import KnowledgeGraph, NodeRef
from repro.graph.search import EntityIndex, resolve_node_refs
from repro.service.cache import CacheStats, ResultCache


@dataclass(frozen=True)
class _PinnedState:
    """Everything one graph version's requests share, all immutable in use."""

    snapshot: CompiledGraph
    selector: RandomWalkContext
    entity_index: EntityIndex


@dataclass(frozen=True)
class SearchOutcome:
    """One served request: the result plus how it was satisfied."""

    result: FindNCResult
    cached: bool
    coalesced: bool
    graph_version: int
    elapsed_seconds: float


@dataclass(frozen=True)
class EngineStats:
    """A point-in-time snapshot of the engine counters."""

    requests: int
    cache_hits: int
    coalesced: int
    computed: int
    repins: int
    pinned_version: int | None
    inflight: int
    max_workers: int
    cache: CacheStats

    def as_dict(self) -> dict:
        return {
            "requests": self.requests,
            "cache_hits": self.cache_hits,
            "coalesced": self.coalesced,
            "computed": self.computed,
            "repins": self.repins,
            "pinned_version": self.pinned_version,
            "inflight": self.inflight,
            "max_workers": self.max_workers,
            "cache": self.cache.as_dict(),
        }


class NCEngine:
    """Serve concurrent FindNC requests over one :class:`KnowledgeGraph`.

    >>> # engine = NCEngine(graph, context_size=50, max_workers=4)
    >>> # result = engine.search(["Angela_Merkel", "Barack_Obama"])
    >>> # engine.stats().cache_hits

    Parameters
    ----------
    context_size / alpha / damping / iterations:
        Defaults of the served pipeline (per-request ``context_size`` and
        ``alpha`` overrides are part of the cache key).
    discriminator_params:
        Extra :class:`MultinomialDiscriminator` keyword arguments (e.g.
        ``{"min_none_share": 0.1}``); fingerprinted into the cache key.
    cache_size / max_workers:
        LRU capacity and executor width.
    seed:
        Base seed mixed into the per-request deterministic RNG derivation.

    ``search``/``submit``/``request`` are safe to call from many threads.
    Do not call them from inside the engine's own executor (a worker
    blocking on another request's future could exhaust the pool).
    """

    def __init__(
        self,
        graph: KnowledgeGraph,
        *,
        context_size: int = 100,
        alpha: float = 0.05,
        damping: float = 0.8,
        iterations: int = 10,
        discriminator_params: dict | None = None,
        excluded_labels: "frozenset[str] | None" = None,
        include_inverse_labels: bool = False,
        none_bucket: bool = True,
        cache_size: int = 256,
        max_workers: int = 4,
        seed: int = 0,
    ) -> None:
        if max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        self._graph = graph
        self.context_size = context_size
        self.alpha = alpha
        self.damping = damping
        self.iterations = iterations
        self._discriminator_params = dict(discriminator_params or {})
        self._discriminator_fingerprint = tuple(
            sorted(self._discriminator_params.items())
        )
        self._excluded_labels = excluded_labels
        self._include_inverse_labels = include_inverse_labels
        self._none_bucket = none_bucket
        self._seed = seed
        self._cache = ResultCache(maxsize=cache_size)
        self._executor = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="nc-query"
        )
        self.max_workers = max_workers
        self._pin_lock = threading.Lock()
        self._pinned: _PinnedState | None = None
        self._flight_lock = threading.Lock()
        self._inflight: dict[tuple, Future] = {}
        self._requests = 0
        self._hits = 0
        self._coalesced = 0
        self._computed = 0
        self._repins = 0
        self._closed = False

    # -- lifecycle ---------------------------------------------------------

    @property
    def graph(self) -> KnowledgeGraph:
        return self._graph

    @property
    def cache(self) -> ResultCache:
        return self._cache

    def close(self) -> None:
        """Shut the executor down (in-flight requests finish first)."""
        self._closed = True
        self._executor.shutdown(wait=True)

    def __enter__(self) -> "NCEngine":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- pinning -----------------------------------------------------------

    def pin(self) -> _PinnedState:
        """The shared per-version state, re-pinned if the graph moved.

        Fast path is lock-free (one attribute read + version compare);
        re-pinning — compiling the snapshot, freezing the PageRank
        transition matrix, rebuilding the entity index, purging
        stale cache entries — is serialized behind a lock.
        """
        state = self._pinned
        if state is not None and state.snapshot.version == self._graph.version:
            return state
        with self._pin_lock:
            state = self._pinned
            if state is None or state.snapshot.version != self._graph.version:
                state = self._build_pin()
                self._pinned = state
                self._repins += 1
                self._cache.purge_versions(state.snapshot.version)
        return state

    def _build_pin(self) -> _PinnedState:
        """Build a selector/snapshot/index triple at ONE graph version.

        A writer racing the build can tear the triple (selector frozen at
        a different version than the snapshot) or break a live-adjacency
        scan mid-iteration; retry a few times for a consistent pin. If
        writers are too hot to ever win the race, keep the last attempt —
        the selector is built *before* the snapshot, so the (newer)
        snapshot covers every node the selector can return, and the
        per-request ``covers`` checks remain the backstop.
        """
        last_error: RuntimeError | None = None
        state: _PinnedState | None = None
        for _ in range(4):
            version = self._graph.version
            try:
                selector = RandomWalkContext(
                    self._graph,
                    damping=self.damping,
                    iterations=self.iterations,
                    pin=True,
                ).warm()
                snapshot = self._graph.compiled()
            except RuntimeError as error:
                # e.g. "dictionary changed size during iteration" from a
                # writer mutating the adjacency mid-compile
                last_error = error
                continue
            state = _PinnedState(
                snapshot=snapshot,
                selector=selector,
                entity_index=EntityIndex(self._graph),
            )
            if snapshot.version == version:
                return state
        if state is None:
            raise RuntimeError(
                "could not pin a graph snapshot: writers kept mutating the "
                "graph during compilation"
            ) from last_error
        return state

    # -- request plumbing --------------------------------------------------

    def _resolve(self, state: _PinnedState, query: Sequence[NodeRef]) -> tuple[int, ...]:
        """Node ids for ``query`` (ids, exact names, or fuzzy names), sorted.

        Same resolution path as ``FindNC.resolve_query`` (shared
        :func:`resolve_node_refs`), then canonicalized by sorting + dedup
        so every spelling of the same entity set shares one cache entry
        (the pipeline is order-invariant; only ``FindNCResult.query``'s
        ordering reflects the canonical form rather than the request's).
        """
        if len(query) == 0:
            raise QueryError("the query set must not be empty")
        resolved = resolve_node_refs(
            self._graph, query, lambda: state.entity_index
        )
        return tuple(sorted(set(resolved)))

    def _rng_seed(self, key: tuple) -> int:
        """A deterministic 63-bit seed derived from the cache key + base seed."""
        material = repr((key[1:], self._seed)).encode()  # version-independent
        digest = hashlib.blake2b(material, digest_size=8).digest()
        return int.from_bytes(digest, "big") >> 1

    def _compute(self, key: tuple, query_ids: tuple[int, ...], k: int, alpha: float,
                 state: _PinnedState) -> FindNCResult:
        try:
            discriminator = MultinomialDiscriminator(
                alpha=alpha,
                rng=self._rng_seed(key),
                **self._discriminator_params,
            )
            finder = FindNC(
                self._graph,
                context_selector=state.selector,
                discriminator=discriminator,
                context_size=k,
                excluded_labels=self._excluded_labels,
                include_inverse_labels=self._include_inverse_labels,
                none_bucket=self._none_bucket,
                entity_index=state.entity_index,
            )
            result = finder.run(query_ids, snapshot=state.snapshot)
            self._cache.put(key, result)
            with self._flight_lock:
                self._computed += 1
            return result
        finally:
            with self._flight_lock:
                self._inflight.pop(key, None)

    def submit(
        self,
        query: Sequence[NodeRef],
        *,
        context_size: int | None = None,
        alpha: float | None = None,
    ) -> "tuple[Future, bool, bool, int]":
        """Enqueue one request; returns ``(future, cached, coalesced, version)``.

        Cache hits resolve immediately; concurrent identical requests
        share the first one's future (single-flight). Name resolution and
        cache lookup happen synchronously on the caller's thread, so bad
        queries raise here rather than inside the future.
        """
        if self._closed:
            raise RuntimeError("engine is closed")
        state = self.pin()
        query_ids = self._resolve(state, query)
        if not state.snapshot.covers(query_ids):
            # The graph grew between pin() and resolution; retry once on
            # a fresh pin (the new snapshot covers every current node).
            state = self.pin()
        k = context_size if context_size is not None else self.context_size
        a = alpha if alpha is not None else self.alpha
        key = (
            state.snapshot.version,
            frozenset(query_ids),
            k,
            a,
            self._discriminator_fingerprint,
        )
        with self._flight_lock:
            self._requests += 1
            cached = self._cache.get(key)
            if cached is not None:
                self._hits += 1
                future: Future = Future()
                future.set_result(cached)
                return future, True, False, state.snapshot.version
            existing = self._inflight.get(key)
            if existing is not None:
                self._coalesced += 1
                return existing, False, True, state.snapshot.version
            future = self._executor.submit(
                self._compute, key, query_ids, k, a, state
            )
            self._inflight[key] = future
            return future, False, False, state.snapshot.version

    def request(
        self,
        query: Sequence[NodeRef],
        *,
        context_size: int | None = None,
        alpha: float | None = None,
    ) -> SearchOutcome:
        """Serve one request synchronously, with cache/coalescing provenance."""
        started = time.perf_counter()
        future, cached, coalesced, version = self.submit(
            query, context_size=context_size, alpha=alpha
        )
        result = future.result()
        return SearchOutcome(
            result=result,
            cached=cached,
            coalesced=coalesced,
            graph_version=version,
            elapsed_seconds=time.perf_counter() - started,
        )

    def search(
        self,
        query: Sequence[NodeRef],
        *,
        context_size: int | None = None,
        alpha: float | None = None,
    ) -> FindNCResult:
        """Serve one request synchronously; the drop-in ``FindNC.run``."""
        return self.request(query, context_size=context_size, alpha=alpha).result

    # -- introspection -----------------------------------------------------

    def stats(self) -> EngineStats:
        with self._flight_lock:
            requests = self._requests
            hits = self._hits
            coalesced = self._coalesced
            computed = self._computed
            inflight = len(self._inflight)
        pinned = self._pinned
        return EngineStats(
            requests=requests,
            cache_hits=hits,
            coalesced=coalesced,
            computed=computed,
            repins=self._repins,
            pinned_version=pinned.snapshot.version if pinned else None,
            inflight=inflight,
            max_workers=self.max_workers,
            cache=self._cache.stats(),
        )
