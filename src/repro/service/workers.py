"""Multiprocess execution backend for :class:`~repro.service.engine.NCEngine`.

The thread backend serves *distinct* queries at ~1x per core: the
pipeline's Python-level work holds the GIL. This module is the scaling
lever for that traffic class — a pool of persistent worker **processes**
that execute FindNC computations against the shared-memory graph
snapshot published by :mod:`repro.parallel.shm`:

* the engine (parent) keeps everything stateful: HTTP serving, name
  resolution, the version-keyed result cache, single-flight coalescing,
  and segment publication;
* workers receive ``(job id, snapshot header, resolved query ids,
  parameters)`` tuples — a few hundred bytes — and attach the snapshot
  **once per graph version** (an shm segment for live-graph serving, an
  mmapped snapshot file for ``repro serve --snapshot``), adopting the
  published frozen PPR transition CSR zero-copy (rebuilding it only when
  the publisher did not share one); per-request cost is one small task
  pickle and one result pickle, never the graph;
* dispatch is round-robin over per-worker task queues, results flow back
  over one shared queue drained by a collector thread that resolves the
  parent-side jobs.

Micro-batching (``max_batch > 1``): instead of sending each task the
moment ``run`` is called, tasks queue in a parent-side pending deque and a
dispatcher thread drains them into bounded micro-batches — up to
``max_batch`` tasks pinned to the *same* snapshot segment, gathered for at
most ``batch_window_ms``. A whole batch ships as one
:class:`WorkerBatchTask` pickle, the worker answers every member's context
search with a single shared multi-column power iteration
(:meth:`~repro.core.context.RandomWalkContext.select_many`), and all
member results return as one list message — per-step sparse-matmat cost
and result-transport overhead are amortized across the batch. Results are
bit-identical to per-task execution (the differential suite in
``tests/test_batch_parity.py`` pins this), and a member whose deadline
expires while waiting in the batch window is shed alone — its batchmates
still execute.

Segment lifecycle: the pool refcounts in-flight jobs per segment.
:meth:`ProcessWorkerPool.retire` unlinks a segment immediately when idle,
or defers the unlink until its last in-flight job completes. A worker
that loses the race anyway (task dispatched, segment unlinked before
attach) reports the job as *stale* and the engine re-dispatches against
the current version.

Workers start via the ``spawn`` method: a fresh interpreter per worker
(no inherited locks or thread state), imports paid once at pool start,
not per request.
"""

from __future__ import annotations

import itertools
import multiprocessing as mp
import os
import threading
import time
import traceback
from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.core.discrimination import MultinomialDiscriminator
from repro.core.distributions import sweep_counts_many
from repro.core.findnc import FindNC, FindNCResult, default_excluded_labels
from repro.errors import DeadlineExceededError
from repro.graph.labels import is_inverse_label
from repro.parallel.shm import (
    SharedSnapshot,
    SharedSnapshotHeader,
    SnapshotGraphView,
    StaleSnapshotError,
    attach_snapshot,
)
from repro.service import faults
from repro.service.tracing import WorkerSpanRecorder
from repro.walk.kernels import active_kernel


def _attach_header(header):
    """Attach whatever transport ``header`` describes.

    Two header species reach a worker: an shm
    :class:`~repro.parallel.shm.SharedSnapshotHeader` (live-graph serving
    — attach the named segment) and a disk
    :class:`~repro.disk.DiskSnapshotHeader` (snapshot-file serving — mmap
    the file; no publish step existed, so there is nothing to attach in
    the shm sense). Both return objects with the same attach surface, so
    the worker loop below does not care which it got. A vanished snapshot
    file maps onto :class:`~repro.parallel.shm.StaleSnapshotError`, the
    same retriable condition as an unlinked segment.
    """
    if isinstance(header, SharedSnapshotHeader):
        return attach_snapshot(header)
    from repro.disk.store import DiskSnapshotHeader, open_snapshot

    if isinstance(header, DiskSnapshotHeader):
        try:
            return open_snapshot(header.path)
        except FileNotFoundError as error:
            raise StaleSnapshotError(
                f"snapshot file {header.path!r} is gone"
            ) from error
    raise TypeError(f"unknown snapshot header type: {type(header).__name__}")


class WorkerCrashError(RuntimeError):
    """A worker process died while one of its jobs was in flight."""


class RemoteQueryError(RuntimeError):
    """A worker-side computation failed; carries the remote traceback."""


@dataclass(frozen=True)
class WorkerConfig:
    """The engine parameters a worker needs to replicate ``_compute``.

    Shipped with every task (it is tiny and immutable); fields mirror the
    :class:`~repro.service.engine.NCEngine` constructor so thread- and
    process-backend results are byte-identical for the same request.
    """

    damping: float
    iterations: int
    excluded_labels: "frozenset[str] | None"
    include_inverse_labels: bool
    none_bucket: bool
    #: ``sorted(dict.items())`` of the engine's discriminator params —
    #: a tuple so the config stays hashable and deterministic.
    discriminator_params: "tuple[tuple[str, object], ...]"


@dataclass(frozen=True)
class WorkerTask:
    """One FindNC computation order, as pickled onto a worker queue.

    ``trace`` is the request's trace id when the parent is recording
    spans for it — the worker then times its phases through a
    :class:`~repro.service.tracing.WorkerSpanRecorder` and ships them
    back by wrapping the ``"ok"`` payload as ``(result, spans)``; with
    ``trace=None`` the payload is the bare result and the worker records
    nothing.
    """

    job_id: int
    header: SharedSnapshotHeader
    query_ids: "tuple[int, ...]"
    context_size: int
    alpha: float
    rng_seed: int
    config: WorkerConfig
    trace: "str | None" = None


@dataclass(frozen=True)
class WorkerBatchTask:
    """A micro-batch of tasks pinned to one snapshot segment.

    All members share ``members[0].header`` (the dispatcher groups by
    segment), so the worker attaches once and answers every member's
    context search with a single shared power-iteration sweep.
    """

    members: "tuple[WorkerTask, ...]"


def _execute_task(
    view: SnapshotGraphView,
    selector,
    task: WorkerTask,
    context=None,
    sweep_cache=None,
) -> FindNCResult:
    """Run one FindNC computation against the attached snapshot view.

    Mirrors ``NCEngine._compute`` exactly — same discriminator
    construction, same pinned-snapshot ``FindNC.run`` — so a process
    worker and a parent thread produce identical results for one task.
    ``context`` injects a precomputed
    :class:`~repro.core.context.ContextResult` (the micro-batch shared
    phase); ``FindNC.run`` skips its own selection when one is given.
    ``sweep_cache`` likewise injects the batch's fused distribution
    counters (see :func:`~repro.core.distributions.sweep_counts_many`).
    """
    config = task.config
    discriminator = MultinomialDiscriminator(
        alpha=task.alpha,
        rng=task.rng_seed,
        **dict(config.discriminator_params),
    )
    finder = FindNC(
        view,
        context_selector=selector,
        discriminator=discriminator,
        context_size=task.context_size,
        excluded_labels=config.excluded_labels,
        include_inverse_labels=config.include_inverse_labels,
        none_bucket=config.none_bucket,
    )
    return finder.run(
        task.query_ids,
        context=context,
        snapshot=view._compiled(),  # noqa: SLF001 - pinned per attach
        sweep_cache=sweep_cache,
    )


def _member_entry(
    view,
    selector,
    task: WorkerTask,
    context,
    sweep_cache=None,
    recorder: "WorkerSpanRecorder | None" = None,
    shared_spans: "list[dict] | None" = None,
):
    """One member's result entry, with per-member error attribution.

    A traced member's ``"ok"`` payload is ``(result, spans)``: the
    message-level spans (transition adoption), this member's group's
    shared-phase spans (``shared_spans``: PPR + fused sweep), and one
    span for this member's own work — ``worker.discriminate`` when the
    shared phase precomputed its context, ``worker.execute`` when it ran
    the full pipeline itself (lone task or per-member fallback).
    """
    traced = recorder is not None and task.trace is not None
    try:
        start = recorder.now() if traced else 0
        result = _execute_task(view, selector, task, context, sweep_cache)
        if traced:
            spans = recorder.export()
            spans.extend(shared_spans or ())
            spans.append(
                {
                    "name": (
                        "worker.discriminate"
                        if context is not None
                        else "worker.execute"
                    ),
                    "start": start,
                    "end": recorder.now(),
                    "attrs": {
                        "queries": len(task.query_ids),
                        "kernel": active_kernel(),
                    },
                }
            )
            return (task.job_id, task.header.segment, "ok", (result, spans))
        return (task.job_id, task.header.segment, "ok", result)
    except StaleSnapshotError:
        raise
    except BaseException as error:  # noqa: BLE001 - forwarded to the parent
        payload = (repr(error), traceback.format_exc())
        return (task.job_id, task.header.segment, "error", payload)


def _candidate_label_mask(view, compiled, config: WorkerConfig):
    """Boolean mask over label ids admitting exactly the candidate labels.

    Mirrors ``FindNC._filter_candidates`` for ``config``'s policy: the
    fused batch sweep drops excluded/inverse labels' edge rows up front
    (they are often most of the adjacency), and ``FindNC.run`` derives
    the same candidate list from the masked counters that an unmasked
    enumeration plus filtering would produce.
    """
    excluded = (
        config.excluded_labels
        if config.excluded_labels is not None
        else default_excluded_labels()
    )
    table = view._label_table()  # noqa: SLF001 - label ids only grow
    mask = np.zeros(max(compiled.label_count, 1), dtype=bool)
    for label_id in range(compiled.label_count):
        name = table.name(label_id)
        if name in excluded:
            continue
        if not config.include_inverse_labels and is_inverse_label(name):
            continue
        mask[label_id] = True
    return mask


def _execute_batch(
    view,
    selector,
    members: "tuple[WorkerTask, ...]",
    recorder: "WorkerSpanRecorder | None" = None,
) -> list:
    """Run a micro-batch with one shared PPR sweep; per-member entries back.

    The shared phase pools every member's personalization columns into a
    single multi-column power iteration
    (:meth:`~repro.core.context.RandomWalkContext.select_many`); the
    per-member discrimination phase then reuses each precomputed context
    through the same ``FindNC`` construction ``_execute_task`` performs —
    results are bit-identical to running the members one at a time.

    Attribution stays per member: a member whose discrimination raises
    gets an ``"error"`` entry without poisoning its batchmates, and if the
    shared phase itself fails (e.g. one member's query ids are invalid)
    the group falls back to independent per-member runs so the failure
    lands only on the members that caused it. ``StaleSnapshotError``
    propagates — staleness is a property of the shared segment, hence of
    the whole batch.
    """
    entries: list = []
    # Members usually share one context size (the engine's is fixed), but
    # the pool API does not require it — one shared sweep per size.
    groups: dict[int, list[WorkerTask]] = {}
    for member in members:
        groups.setdefault(member.context_size, []).append(member)
    for context_size, group in groups.items():
        # Shared-phase spans for this group (PPR + fused sweep) are built
        # as offset dicts and attached to *every* traced member — each of
        # them did spend that wall-clock waiting on the shared work.
        shared_spans: "list[dict]" = []
        try:
            ppr_start = recorder.now() if recorder is not None else 0
            contexts = selector.select_many(
                [member.query_ids for member in group], context_size
            )
            if recorder is not None:
                shared_spans.append(
                    {
                        "name": "worker.ppr",
                        "start": ppr_start,
                        "end": recorder.now(),
                        "attrs": {
                            "batch_size": len(group),
                            "context_size": context_size,
                            "kernel": active_kernel(),
                        },
                    }
                )
            # Second shared pass: sweep every member's query and context
            # sets for the distribution builder in one fused gather.
            # Query keys are deduped order-preserving, matching what
            # ``FindNC.resolve_query`` derives from the (already
            # id-resolved) task ids, so ``run`` gets cache hits.
            node_sets = [
                tuple(dict.fromkeys(member.query_ids)) for member in group
            ] + [tuple(context.nodes) for context in contexts]
            compiled = view._compiled()  # noqa: SLF001 - pinned per attach
            # When the whole group shares one candidate-label policy
            # (the engine ships a uniform config), the sweep can drop
            # excluded/inverse labels' rows before sorting. Mixed
            # policies just sweep unmasked — slower, never wrong.
            policies = {
                (member.config.excluded_labels, member.config.include_inverse_labels)
                for member in group
            }
            label_mask = (
                _candidate_label_mask(view, compiled, group[0].config)
                if len(policies) == 1
                else None
            )
            sweep_start = recorder.now() if recorder is not None else 0
            sweeps = sweep_counts_many(compiled, node_sets, label_mask)
            sweep_cache = dict(zip(node_sets, sweeps))
            if recorder is not None:
                shared_spans.append(
                    {
                        "name": "worker.sweep",
                        "start": sweep_start,
                        "end": recorder.now(),
                        "attrs": {
                            "batch_size": len(group),
                            "node_sets": len(node_sets),
                            "kernel": active_kernel(),
                        },
                    }
                )
        except StaleSnapshotError:
            raise
        except Exception:
            for member in group:
                entries.append(
                    _member_entry(view, selector, member, None, recorder=recorder)
                )
            continue
        for member, context in zip(group, contexts):
            entries.append(
                _member_entry(
                    view,
                    selector,
                    member,
                    context,
                    sweep_cache,
                    recorder=recorder,
                    shared_spans=shared_spans,
                )
            )
    return entries


def _worker_main(worker_index: int, task_queue, result_queue) -> None:
    """The worker process loop: attach-per-version, compute-per-task.

    Messages back to the parent are ``(job_id, segment, status, payload)``
    with status ``"ok"`` (payload: the pickled
    :class:`~repro.core.findnc.FindNCResult`), ``"stale"`` (the segment
    was unlinked before this worker could attach) or ``"error"``
    (payload: ``(repr, traceback string)``).
    """
    from repro.core.context import RandomWalkContext  # heavy import, worker-local

    # Chaos-test transport: the env var is the only channel that crosses
    # the spawn boundary, so workers arm their faults from it at startup.
    faults.install_from_env()

    attached = None
    attached_segment: str | None = None
    view: SnapshotGraphView | None = None
    selector = None

    while True:
        message: "WorkerTask | WorkerBatchTask | None" = task_queue.get()
        if message is None:
            break
        if faults.fire("worker.crash"):
            # Simulated hard crash mid-job: no result message, no cleanup
            # — exactly what the parent's watchdog must recover from. For
            # a batch message the whole batch is lost; every member's
            # watchdog surfaces the crash and the engine's per-request
            # retries re-dispatch (and re-batch) them independently.
            os._exit(1)
        faults.fire("worker.slow")  # the rule's delay models a hung worker
        batched = isinstance(message, WorkerBatchTask)
        members = message.members if batched else (message,)
        task = members[0]
        segment = task.header.segment
        # One recorder per received message: its origin (message receipt)
        # is what the parent rebases span offsets against at stitch time.
        recorder = (
            WorkerSpanRecorder()
            if any(member.trace is not None for member in members)
            else None
        )
        try:
            if attached_segment != segment:
                # New graph version: drop the old mapping (views first —
                # a memoryview with live exports cannot be released),
                # attach the new segment, rebuild the frozen transition
                # matrix from the shared arrays. Once per version, not
                # per request. `attached_segment` is only recorded after
                # the WHOLE initialization succeeds — a partial failure
                # (e.g. the transition build raising) must not leave this
                # worker believing the segment is ready, or every later
                # task for the version would skip re-initialization and
                # fail on the half-built state.
                selector = None
                view = None
                attached_segment = None
                if attached is not None:
                    attached.close()
                    attached = None
                attach_start = recorder.now() if recorder is not None else 0
                attached = _attach_header(task.header)
                view = SnapshotGraphView(attached)
                selector = RandomWalkContext(
                    view,
                    damping=task.config.damping,
                    iterations=task.config.iterations,
                    pin=True,
                )
                shared_transition = attached.transition()
                if shared_transition is not None:
                    # The publisher shared the frozen transition's CSR
                    # triple (through the segment or the snapshot file):
                    # adopt it zero-copy instead of rebuilding
                    # weighted_adjacency per worker per version.
                    selector.warm_from(shared_transition)
                else:
                    selector.warm()
                attached_segment = segment
                if recorder is not None:
                    recorder.record(
                        "worker.attach",
                        attach_start,
                        segment=segment,
                        shared_transition=shared_transition is not None,
                    )
            if batched:
                # One list message for the whole batch: result pickling
                # and queue transport are paid once per batch, not per
                # member.
                result_queue.put(_execute_batch(view, selector, members, recorder))
            else:
                # Same reply shapes as before: _member_entry produces the
                # identical ok/error tuples the inline path did, plus the
                # (result, spans) payload wrap for traced tasks.
                result_queue.put(
                    _member_entry(view, selector, task, None, recorder=recorder)
                )
        except StaleSnapshotError:
            attached = None
            attached_segment = None
            view = None
            selector = None
            if batched:
                result_queue.put(
                    [(member.job_id, segment, "stale", None) for member in members]
                )
            else:
                result_queue.put((task.job_id, segment, "stale", None))
        except BaseException as error:  # noqa: BLE001 - forwarded to the parent
            payload = (repr(error), traceback.format_exc())
            try:
                replies = [
                    (member.job_id, segment, "error", payload) for member in members
                ]
                result_queue.put(replies if batched else replies[0])
            except Exception:  # pragma: no cover - unpicklable payload
                replies = [
                    (member.job_id, segment, "error", (repr(error), ""))
                    for member in members
                ]
                result_queue.put(replies if batched else replies[0])

    # Orderly shutdown: release the mapping before the interpreter exits.
    selector = None
    view = None
    if attached is not None:
        attached.close()


class _Job:
    """Parent-side slot one in-flight task resolves into.

    ``process`` is ``None`` while the task waits in the batch window (the
    dispatcher thread assigns it at batch send time); the waiter's
    liveness watchdog only engages once a process is attached.
    ``dispatched_ns`` is stamped at the same moment — the boundary between
    the trace's ``pool.gather`` span (batch-window wait) and its
    ``pool.worker`` span (dispatch through result).
    """

    __slots__ = ("event", "status", "payload", "process", "dispatched_ns")

    def __init__(self, process=None) -> None:
        self.event = threading.Event()
        self.status: str | None = None
        self.payload: object = None
        self.process = process
        self.dispatched_ns: "int | None" = None


@dataclass(frozen=True)
class WorkerPoolStats:
    """A point-in-time snapshot of the pool counters."""

    workers: int
    alive: int
    dispatched: int
    completed: int
    stale_retries: int
    respawns: int
    inflight: int
    retired_segments: int
    #: Jobs abandoned because their deadline expired mid-flight.
    deadline_abandons: int = 0
    #: Respawns refused by the rate limiter (slot left dead until
    #: :meth:`ProcessWorkerPool.revive` or the window rolls over).
    respawns_suppressed: int = 0
    #: Micro-batches dispatched (0 unless the pool runs with max_batch > 1).
    batches: int = 0
    #: Members across those batches; mean batch size = members / batches.
    batched_members: int = 0

    def as_dict(self) -> dict:
        """The JSON shape embedded in the engine's ``/stats`` payload."""
        return {
            "workers": self.workers,
            "alive": self.alive,
            "dispatched": self.dispatched,
            "completed": self.completed,
            "stale_retries": self.stale_retries,
            "respawns": self.respawns,
            "inflight": self.inflight,
            "retired_segments": self.retired_segments,
            "deadline_abandons": self.deadline_abandons,
            "respawns_suppressed": self.respawns_suppressed,
            "batches": self.batches,
            "batched_members": self.batched_members,
        }


class ProcessWorkerPool:
    """Round-robin pool of persistent FindNC worker processes.

    ``run`` is safe to call from many threads (the engine's thread pool
    is the dispatch layer); each call blocks until its worker answers.
    The pool never sees the graph — only snapshot headers and task
    parameters — which is what keeps the serialization boundary at
    "a few hundred bytes per request".

    ``on_event`` is an optional instrumentation callback ``(event: str,
    count: int)`` invoked outside the pool lock for ``"dispatch"``,
    ``"complete"``, ``"stale"``, ``"crash"``, ``"deadline_abandon"``,
    ``"respawn"``, ``"respawn_suppressed"`` and ``"batch_dispatch"``
    events (the engine wires it to its metrics registry); a raising
    callback is swallowed.

    Micro-batching: with ``max_batch > 1``, ``run`` enqueues tasks onto a
    pending deque and a dispatcher thread groups them by snapshot segment
    into batches of up to ``max_batch``, waiting at most
    ``batch_window_ms`` for stragglers once a task is pending. The default
    (``max_batch=1``) keeps the original direct per-task dispatch path.
    ``on_batch`` is an optional callback ``(size: int)`` fired per
    dispatched batch (the engine wires it to a batch-size histogram).
    """

    def __init__(
        self,
        workers: int,
        *,
        start_method: str = "spawn",
        watchdog_tick: float = 0.5,
        crash_grace_s: float = 1.0,
        respawn_limit: int = 8,
        respawn_window_s: float = 30.0,
        batch_window_ms: float = 0.0,
        max_batch: int = 1,
        on_event=None,
        on_batch=None,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if watchdog_tick <= 0:
            raise ValueError(f"watchdog_tick must be > 0, got {watchdog_tick}")
        if crash_grace_s < 0:
            raise ValueError(f"crash_grace_s must be >= 0, got {crash_grace_s}")
        if respawn_limit < 1:
            raise ValueError(f"respawn_limit must be >= 1, got {respawn_limit}")
        if respawn_window_s <= 0:
            raise ValueError(
                f"respawn_window_s must be > 0, got {respawn_window_s}"
            )
        if batch_window_ms < 0:
            raise ValueError(f"batch_window_ms must be >= 0, got {batch_window_ms}")
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        self._watchdog_tick = watchdog_tick
        self._crash_grace_s = crash_grace_s
        self._respawn_limit = respawn_limit
        self._respawn_window_s = respawn_window_s
        self._on_event = on_event
        self._ctx = mp.get_context(start_method)
        self._result_queue = self._ctx.SimpleQueue()
        self._processes: list = []
        self._task_queues: list = []
        for index in range(workers):
            process, task_queue = self._spawn(index)
            self._processes.append(process)
            self._task_queues.append(task_queue)
        self.workers = workers
        self._lock = threading.Lock()
        self._jobs: dict[int, _Job] = {}
        self._job_ids = itertools.count(1)
        self._round_robin = 0
        self._inflight_by_segment: dict[str, int] = {}
        self._retired: dict[str, SharedSnapshot] = {}
        self._dispatched = 0
        self._completed = 0
        self._stale_retries = 0
        self._respawns = 0
        self._respawn_times: "deque[float]" = deque()
        self._respawns_suppressed = 0
        self._deadline_abandons = 0
        self._closed = False
        self._max_batch = max_batch
        self._batch_window_s = batch_window_ms / 1000.0
        self._on_batch = on_batch
        self._batches = 0
        self._batched_members = 0
        self._pending: "deque[tuple[int, WorkerTask]]" = deque()
        self._batch_cond = threading.Condition(self._lock)
        self._dispatcher: "threading.Thread | None" = None
        if max_batch > 1:
            self._dispatcher = threading.Thread(
                target=self._dispatch_batches, name="nc-batch-dispatcher", daemon=True
            )
            self._dispatcher.start()
        self._collector = threading.Thread(
            target=self._collect, name="nc-worker-collector", daemon=True
        )
        self._collector.start()

    def _emit(self, event: str, count: int = 1) -> None:
        """Fire the instrumentation callback; never let it break dispatch."""
        if self._on_event is None or count <= 0:
            return
        try:
            self._on_event(event, count)
        except Exception:  # noqa: BLE001 - observability is best-effort
            pass

    def _spawn(self, index: int):
        """Start one worker process with its private task queue."""
        task_queue = self._ctx.SimpleQueue()
        process = self._ctx.Process(
            target=_worker_main,
            args=(index, task_queue, self._result_queue),
            name=f"nc-worker-{index}",
            daemon=True,
        )
        process.start()
        return process, task_queue

    def _respawn(self, dead) -> bool:
        """Replace ``dead`` with a fresh worker so its slot keeps serving.

        Without this, a single worker crash would permanently fail every
        job round-robined onto its slot. Jobs already queued to the dead
        worker are lost (their callers' watchdogs surface
        :class:`WorkerCrashError`); new dispatches get the replacement.
        Idempotent under races: only the caller that still finds ``dead``
        in the slot table respawns.

        Respawn storms are rate-limited: at most ``respawn_limit``
        replacements per rolling ``respawn_window_s`` window. A crash
        loop (bad snapshot, poisoned query, OOM killer) would otherwise
        burn CPU fork-bombing replacements that die immediately; past
        the limit the slot stays dead (``respawns_suppressed`` counts
        it) until the window rolls over or :meth:`revive` is called —
        the engine's circuit breaker observes the repeated
        :class:`WorkerCrashError` and degrades instead. Returns whether
        a replacement was actually started.
        """
        event: "str | None" = None
        try:
            with self._lock:
                if self._closed:
                    return False
                try:
                    slot = self._processes.index(dead)
                except ValueError:  # another caller already replaced it
                    return True
                if self._processes[slot].is_alive():  # pragma: no cover - raced
                    return True
                now = time.monotonic()
                while self._respawn_times and now - self._respawn_times[0] > self._respawn_window_s:
                    self._respawn_times.popleft()
                if len(self._respawn_times) >= self._respawn_limit:
                    self._respawns_suppressed += 1
                    event = "respawn_suppressed"
                    return False
                self._respawn_times.append(now)
                process, task_queue = self._spawn(slot)
                self._processes[slot] = process
                self._task_queues[slot] = task_queue
                self._respawns += 1
                event = "respawn"
                return True
        finally:
            if event is not None:
                self._emit(event)

    def revive(self) -> int:
        """Respawn every dead slot now, resetting the rate-limit window.

        The operator/recovery escape hatch after a crash storm ends
        (and what the engine's circuit breaker calls before a half-open
        probe): suppressed slots come back immediately instead of
        waiting out ``respawn_window_s``. Returns the number of slots
        revived.
        """
        revived = 0
        with self._lock:
            if self._closed:
                return 0
            self._respawn_times.clear()
            for slot, process in enumerate(self._processes):
                if process.is_alive():
                    continue
                replacement, task_queue = self._spawn(slot)
                self._processes[slot] = replacement
                self._task_queues[slot] = task_queue
                self._respawns += 1
                revived += 1
        self._emit("respawn", revived)
        return revived

    # -- dispatch ----------------------------------------------------------

    def run(
        self,
        *,
        header: SharedSnapshotHeader,
        query_ids: "tuple[int, ...]",
        context_size: int,
        alpha: float,
        rng_seed: int,
        config: WorkerConfig,
        deadline: "float | None" = None,
        trace=None,
        trace_span=None,
    ) -> FindNCResult:
        """Execute one task on the next worker (round-robin); block for it.

        ``trace`` (a :class:`~repro.service.tracing.Trace`) opts this job
        into span recording: the task ships the trace id across the
        pickle boundary, the worker times its phases locally, and on
        completion this method stitches the result under ``trace_span``
        as ``pool.gather`` (batch-window wait, batching only) and
        ``pool.worker`` (dispatch → result, carrying the worker-recorded
        phase spans rebased onto the dispatch instant).

        ``deadline`` is an absolute :func:`time.monotonic` instant: an
        already-expired deadline cancels the job before dispatch, and an
        in-flight job whose deadline passes is abandoned (segment
        refcount given back; a late worker result is dropped by the
        collector's decrement-once bookkeeping) and surfaces
        :class:`~repro.errors.DeadlineExceededError` within one watchdog
        tick. The worker may still finish the computation — results are
        pure, so the only cost is wasted work.

        Raises :class:`StaleSnapshotError` when the segment was retired
        before the worker attached (callers re-dispatch with the current
        header), :class:`RemoteQueryError` for worker-side failures, and
        :class:`WorkerCrashError` if the worker process died.
        """
        if deadline is not None and time.monotonic() >= deadline:
            # Expired before dispatch: never enqueue work nobody will wait
            # for (this is the "queued-but-unstarted jobs are cancelled"
            # path — the engine's executor queue delay already ate the
            # whole budget).
            with self._lock:
                self._deadline_abandons += 1
            self._emit("deadline_abandon")
            raise DeadlineExceededError(
                "request deadline expired before the job could be dispatched"
            )
        batching = self._max_batch > 1
        slot = -1
        enqueued_ns = time.monotonic_ns()
        with self._lock:
            if self._closed:
                raise RuntimeError("worker pool is closed")
            job_id = next(self._job_ids)
            task = WorkerTask(
                job_id=job_id,
                header=header,
                query_ids=tuple(query_ids),
                context_size=context_size,
                alpha=alpha,
                rng_seed=rng_seed,
                config=config,
                trace=trace.trace_id if trace is not None else None,
            )
            if batching:
                # The dispatcher thread assigns the worker at batch send
                # time; until then the job has no process and the liveness
                # watchdog below stays out of the way.
                job = _Job(None)
                self._jobs[job_id] = job
                self._pending.append((job_id, task))
                self._batch_cond.notify()
            else:
                slot = self._round_robin % self.workers
                self._round_robin += 1
                job = _Job(self._processes[slot])
                job.dispatched_ns = enqueued_ns
                self._jobs[job_id] = job
            self._inflight_by_segment[header.segment] = (
                self._inflight_by_segment.get(header.segment, 0) + 1
            )
            self._dispatched += 1
        self._emit("dispatch")
        if not batching:
            try:
                self._task_queues[slot].put(task)
            except BaseException:
                # put() pickles the task on the calling thread; a failure
                # here (e.g. an unpicklable discriminator param) must give
                # back the job slot and the segment refcount or retired
                # segments could never unlink.
                self._abandon(job_id, header.segment)
                raise
        # Wait with a liveness watchdog: a worker killed mid-job would
        # otherwise leave this job waiting forever. The wait is chunked
        # by the watchdog tick and clipped to the deadline, so both a
        # dead worker and an expired deadline surface within one tick.
        while True:
            wait_for = self._watchdog_tick
            if deadline is not None:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    still_queued = job.process is None
                    self._abandon(job_id, header.segment)
                    with self._lock:
                        self._deadline_abandons += 1
                    self._emit("deadline_abandon")
                    if still_queued:
                        # Shed THIS member only: the pending entry stays in
                        # the deque but the dispatcher drops job ids that
                        # are no longer registered, so batchmates still
                        # dispatch and execute untouched.
                        raise DeadlineExceededError(
                            f"job {job_id} missed its deadline while queued "
                            "in the batch window (the member was shed; its "
                            "batchmates were not)"
                        )
                    raise DeadlineExceededError(
                        f"job {job_id} missed its deadline while executing on "
                        f"{job.process.name} (the job was abandoned)"
                    )
                wait_for = min(wait_for, remaining)
            if job.event.wait(timeout=wait_for):
                break
            process = job.process
            if process is not None and not process.is_alive():
                # The worker may have finished the job (result already on
                # the queue) and died afterwards — give the collector a
                # grace window to drain it before declaring the job lost.
                if job.event.wait(timeout=self._crash_grace_s):
                    break
                self._abandon(job_id, header.segment)
                self._emit("crash")
                replaced = self._respawn(process)
                raise WorkerCrashError(
                    f"worker {process.name} died while computing job "
                    f"{job_id} ("
                    + (
                        "a replacement worker was started"
                        if replaced
                        else "replacement suppressed by the respawn rate limit"
                    )
                    + ")"
                )
        if job.status == "ok":
            payload = job.payload
            if trace is not None:
                # A traced task's ok payload is (result, worker spans).
                result, worker_spans = payload  # type: ignore[misc]
                done_ns = time.monotonic_ns()
                dispatched_ns = (
                    job.dispatched_ns
                    if job.dispatched_ns is not None
                    else enqueued_ns
                )
                if batching and dispatched_ns > enqueued_ns:
                    trace.add_span(
                        "pool.gather",
                        start_ns=enqueued_ns,
                        end_ns=dispatched_ns,
                        parent=trace_span,
                        attributes={
                            "window_ms": self._batch_window_s * 1000.0,
                            "max_batch": self._max_batch,
                        },
                    )
                process = job.process
                worker_span = trace.add_span(
                    "pool.worker",
                    start_ns=dispatched_ns,
                    end_ns=done_ns,
                    parent=trace_span,
                    attributes={
                        "worker_id": (
                            process.name if process is not None else "unknown"
                        ),
                    },
                )
                # Worker offsets count from message receipt, which is
                # after the dispatch instant; rebasing on dispatched_ns
                # keeps every remote span inside pool.worker.
                trace.add_remote_spans(
                    worker_spans, base_ns=dispatched_ns, parent=worker_span
                )
                return result
            return payload  # type: ignore[return-value]
        if job.status == "stale":
            with self._lock:
                self._stale_retries += 1
            self._emit("stale")
            raise StaleSnapshotError(
                f"segment {header.segment!r} was retired before the worker attached"
            )
        error_repr, remote_traceback = job.payload  # type: ignore[misc]
        raise RemoteQueryError(
            f"worker computation failed: {error_repr}\n--- worker traceback ---\n"
            f"{remote_traceback}"
        )

    def _abandon(self, job_id: int, segment: str) -> None:
        """Drop a job whose worker died; fix the segment refcount.

        The refcount is given back only if this call actually removed the
        job — the collector may have resolved it concurrently, and each
        job decrements its segment exactly once.
        """
        unlink_now: SharedSnapshot | None = None
        with self._lock:
            job = self._jobs.pop(job_id, None)
            if job is not None:
                unlink_now = self._decrement_segment_locked(segment)
        if unlink_now is not None:
            unlink_now.unlink()

    # -- micro-batch dispatch ----------------------------------------------

    def _resolve_local_error(self, job_id: int, segment: str, payload) -> None:
        """Fail a job from the parent side (batch pickling broke)."""
        unlink_now: SharedSnapshot | None = None
        with self._lock:
            job = self._jobs.pop(job_id, None)
            if job is not None:
                unlink_now = self._decrement_segment_locked(segment)
        if unlink_now is not None:
            unlink_now.unlink()
        if job is not None:
            job.status = "error"
            job.payload = payload
            job.event.set()

    def _dispatch_batches(self) -> None:
        """Drain pending tasks into segment-grouped micro-batches.

        Runs on the dedicated dispatcher thread (only started when
        ``max_batch > 1``). Once a task is pending, up to
        ``batch_window_ms`` is spent gathering same-segment companions —
        the window caps queueing latency, ``max_batch`` caps batch size.
        Entries whose job id is no longer registered were shed by their
        caller's deadline while queued; they are dropped member-by-member
        without disturbing the rest of the batch. Tasks pinned to a
        different segment than the batch head keep their arrival order
        and form the next batch.

        Graceful drain: ``close()`` sets ``_closed`` and joins this
        thread *before* sending worker shutdown sentinels. Observing
        ``_closed`` here cuts the gather window short but still flushes
        every already-gathered member to the worker queues — the thread
        only exits once the pending deque is empty, so a request accepted
        before ``close()`` completes instead of being dropped
        (regression-pinned in ``tests/test_service_workers.py``).
        """
        while True:
            with self._batch_cond:
                while not self._pending and not self._closed:
                    self._batch_cond.wait()
                if self._closed and not self._pending:
                    return
                window_until = time.monotonic() + self._batch_window_s
                while True:
                    live = deque(
                        entry for entry in self._pending if entry[0] in self._jobs
                    )
                    self._pending = live
                    if not live:
                        break
                    head_segment = live[0][1].header.segment
                    ready = sum(
                        1
                        for _, task in live
                        if task.header.segment == head_segment
                    )
                    remaining = window_until - time.monotonic()
                    if ready >= self._max_batch or remaining <= 0 or self._closed:
                        break
                    self._batch_cond.wait(timeout=remaining)
                if not self._pending:
                    continue
                picked: list = []
                kept: "deque[tuple[int, WorkerTask]]" = deque()
                head_segment = self._pending[0][1].header.segment
                for entry in self._pending:
                    if (
                        len(picked) < self._max_batch
                        and entry[1].header.segment == head_segment
                    ):
                        picked.append(entry)
                    else:
                        kept.append(entry)
                self._pending = kept
                slot = self._round_robin % self.workers
                self._round_robin += 1
                process = self._processes[slot]
                dispatched_ns = time.monotonic_ns()
                for job_id, _task in picked:
                    job = self._jobs.get(job_id)
                    if job is not None:
                        job.process = process
                        job.dispatched_ns = dispatched_ns
                self._batches += 1
                self._batched_members += len(picked)
            self._emit("batch_dispatch")
            if self._on_batch is not None:
                try:
                    self._on_batch(len(picked))
                except Exception:  # noqa: BLE001 - observability is best-effort
                    pass
            if len(picked) == 1 and picked[0][1].trace is None:
                # A lone task ships as a plain WorkerTask: the worker's
                # single-task path is the batch path's parity oracle, so a
                # batch of one must be indistinguishable from no batching.
                # A *traced* lone task takes the batch path anyway — same
                # bit-identical result (pinned by tests/test_batch_parity)
                # but with the per-phase PPR/sweep spans recorded.
                message: "WorkerTask | WorkerBatchTask" = picked[0][1]
            else:
                message = WorkerBatchTask(
                    members=tuple(task for _, task in picked)
                )
            try:
                self._task_queues[slot].put(message)
            except BaseException as error:  # noqa: BLE001 - resolve all members
                payload = (repr(error), traceback.format_exc())
                for job_id, task in picked:
                    self._resolve_local_error(job_id, task.header.segment, payload)

    # -- collection --------------------------------------------------------

    def _collect(self) -> None:
        while True:
            message = self._result_queue.get()
            if message is None:
                break
            # A batch answers with one list of per-member entries (one
            # pickle for the whole batch); each entry resolves exactly
            # like a standalone result message.
            entries = message if isinstance(message, list) else [message]
            for job_id, segment, status, payload in entries:
                unlink_now: SharedSnapshot | None = None
                with self._lock:
                    job = self._jobs.pop(job_id, None)
                    if job is not None:
                        # Decrement exactly once per job: an abandoned job
                        # (crash watchdog) already gave its refcount back in
                        # _abandon, and its late message must not decrement
                        # the segment a second time — that could unlink a
                        # retired segment while another job still reads it.
                        unlink_now = self._decrement_segment_locked(segment)
                        self._completed += 1
                if unlink_now is not None:
                    unlink_now.unlink()
                if job is not None:
                    job.status = status
                    job.payload = payload
                    job.event.set()
                    self._emit("complete")

    def _decrement_segment_locked(self, segment: str) -> "SharedSnapshot | None":
        """Drop one in-flight ref; return a retired segment now ready to unlink."""
        count = self._inflight_by_segment.get(segment, 0) - 1
        if count > 0:
            self._inflight_by_segment[segment] = count
            return None
        self._inflight_by_segment.pop(segment, None)
        return self._retired.pop(segment, None)

    # -- segment lifecycle -------------------------------------------------

    def retire(self, shared: SharedSnapshot) -> None:
        """Unlink ``shared`` as soon as no in-flight job references it.

        Called by the engine when a graph version is superseded: idle
        segments unlink immediately; busy ones are parked and unlinked by
        the collector when their last job completes.
        """
        with self._lock:
            if not self._closed and self._inflight_by_segment.get(shared.segment, 0) > 0:
                self._retired[shared.segment] = shared
                return
        shared.unlink()

    # -- lifecycle ---------------------------------------------------------

    def close(self, *, timeout: float = 10.0) -> None:
        """Drain in-flight work, stop workers and the collector, unlink
        parked segments.

        Graceful-drain ordering: setting ``_closed`` rejects *new* ``run``
        calls, then the dispatcher is joined so it flushes every
        already-gathered batch member onto the worker queues (it exits
        only once its pending deque is empty), then the shutdown
        sentinels go out *behind* that flushed work — queues are FIFO, so
        workers answer everything queued before exiting, and the
        collector resolves those jobs before draining its own sentinel.
        Only jobs still unresolved after all of that (e.g. lost to a dead
        worker) are failed as ``worker pool closed``.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
        if self._dispatcher is not None:
            # Wake the dispatcher so it observes _closed, flushes its
            # pending members, and exits before the worker queues receive
            # their shutdown sentinels.
            with self._batch_cond:
                self._batch_cond.notify_all()
            self._dispatcher.join(timeout=timeout)
        for task_queue in self._task_queues:
            task_queue.put(None)
        for process in self._processes:
            process.join(timeout=timeout)
            if process.is_alive():  # pragma: no cover - stuck worker
                process.terminate()
                process.join(timeout=timeout)
        self._result_queue.put(None)
        self._collector.join(timeout=timeout)
        with self._lock:
            leftover = list(self._jobs.values())
            self._jobs.clear()
            retired = list(self._retired.values())
            self._retired.clear()
        for job in leftover:  # unblock callers whose results never arrived
            job.status = "error"
            job.payload = ("RuntimeError('worker pool closed')", "")
            job.event.set()
        for shared in retired:
            shared.unlink()

    def __enter__(self) -> "ProcessWorkerPool":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- introspection -----------------------------------------------------

    def stats(self) -> WorkerPoolStats:
        """Counters for ``/stats`` and the benchmark report."""
        with self._lock:
            return WorkerPoolStats(
                workers=self.workers,
                alive=sum(1 for p in self._processes if p.is_alive()),
                dispatched=self._dispatched,
                completed=self._completed,
                stale_retries=self._stale_retries,
                respawns=self._respawns,
                inflight=len(self._jobs),
                retired_segments=len(self._retired),
                deadline_abandons=self._deadline_abandons,
                respawns_suppressed=self._respawns_suppressed,
                batches=self._batches,
                batched_members=self._batched_members,
            )
