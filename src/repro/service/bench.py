"""Throughput/latency benchmark for the query service (``repro bench-serve``).

Phases, all on the same built-in dataset and seeded (deterministic
workload; queries are Table-1 entity sets sent as fuzzy display names,
the way API clients spell entities):

* **cold latency** — every distinct query computed once through the
  engine on an empty cache, one at a time. Doubles as the engine's
  single-thread distinct-query throughput.
* **warm latency** — the same queries again, all cache hits; the
  cold/warm ratio is the cached-hit speedup (acceptance: >= 10x).
* **sequential vs concurrent traffic** — a realistic trace (a few hot
  queries repeated, a tail of one-off queries, deterministically
  shuffled) served two ways: the *single-thread sequential* baseline is
  the pre-service stateless path (a fresh ``rw_mult`` finder computes
  every request, exactly what ``repro search`` does per invocation); the
  *concurrent* run pushes the same trace through the engine's 4-wide
  executor, where the version-keyed cache serves repeats and
  single-flight coalesces duplicates in flight. The throughput ratio is
  what the service layer buys under real traffic (acceptance: > 1x).
* **concurrent distinct (transparency)** — the distinct-query-only trace
  through the executor, reported with ``cpu_count``: on a single-CPU
  host the GIL bounds this at ~1x engine-sequential; on multi-core hosts
  the numpy/BLAS kernels release the GIL and it rises above.
* **backend comparison** — the same distinct-query traffic through the
  thread backend and the shared-memory **process** backend
  (``executor="process"``), with a full result-parity check: both
  backends must return identical labels and scores for every query.
  Distinct queries are the traffic class the GIL caps, so this ratio is
  what the process pool buys; it only exceeds 1x on multi-core hosts
  (``cpu_count`` is recorded so single-core runs read honestly).
* **cold start** (PR 4) — boot-time comparison for the same graph:
  the legacy path (parse the N-Triples dump, rebuild the dict graph,
  recompile the columnar snapshot) vs the snapshot store (one
  ``mmap`` open of the compiled file, :mod:`repro.disk`). The one-time
  ``repro compile`` cost and file size are recorded alongside; the
  speedup must clear 10x (asserted).
* **snapshot serving** (PR 4) — the distinct queries served by an
  engine over the mmapped snapshot *view* (no ``KnowledgeGraph`` in the
  process), asserted identical to the live-graph thread engine's
  results.
* **hot swap** (PR 5) — the serve-v2-while-v1-drains scenario: two
  content-identical versions published into a
  :class:`~repro.disk.registry.SnapshotRegistry`, an engine booted on
  v1 under sustained multi-client traffic, then
  :meth:`~repro.service.engine.NCEngine.swap_snapshot` onto v2
  mid-stream. Asserted: **zero** failed/dropped requests across the
  swap, post-swap results byte-identical to a fresh engine opened on
  the v2 file, and the drained v1 pin retired (old mapping closed,
  version recorded in ``drained_versions``) after its last in-flight
  request completed.
* **fault storm** (PR 6) — the chaos phase: a process-backend engine
  over a snapshot registry serves sustained multi-client traffic while
  workers are crash-injected (``worker.crash`` via
  :mod:`repro.service.faults`) *and* SIGKILLed outright *and* a hot
  swap lands mid-storm. Asserted: every completed response is
  byte-identical to a fault-free engine's answer for the same query,
  every failure is a structured serving error (deadline / saturation /
  crash — never a hang, never a wrong answer), the error rate stays
  bounded, and after the storm ends the pool is revived and health
  returns to ``ok``.
* **load profile** (PR 7) — :mod:`repro.service.loadgen` traffic shaped
  like production: Zipf-skewed entity popularity, entity-centric
  sessions, **open-loop** Poisson arrivals (latency charged from the
  scheduled arrival, so queue buildup is measured, not hidden — no
  coordinated omission) plus a closed-loop companion run. Latency
  quantiles are reported with seeded bootstrap confidence intervals
  (:mod:`repro.eval.bootstrap`), and the raw latency samples are
  embedded so ``tools/bench_compare.py`` can re-bootstrap a
  two-report comparison.
* **saturated batch** (PR 8) — the micro-batching phase: the same
  saturated burst of *distinct* width-2 queries (sampled over the whole
  graph, so neither the cache nor single-flight can absorb it) served
  by two single-worker process engines — per-query dispatch
  (``max_batch=1``) vs micro-batched (``max_batch``,
  ``batch_window_ms``), where each worker runs one shared multi-column
  power iteration and one fused distribution sweep per batch. Results
  are asserted byte-identical between the arms; the throughput ratio is
  gated by ``tools/bench_compare.py --saturated`` (acceptance: >= 2x).
* **live ingest** (PR 10) — the delta-chain phase: a registry-backed
  engine serves sustained multi-client reads while statement batches
  land live — append to the delta log, incremental CSR merge
  (:meth:`~repro.disk.ingest.StreamingCompiler.merge_delta`) into a new
  snapshot, adopt via ``swap_snapshot`` — the pipeline behind
  ``POST /v1/admin/ingest``. Asserted: zero failed reads across every
  cycle, exact chain provenance and merge arithmetic on the final
  manifest entry, and post-ingest results byte-identical to a fresh
  engine on the merged file. Read p99 during ingest vs a
  like-for-like quiescent control is gated by
  ``tools/bench_compare.py --live-ingest``.
* **trace overhead** (PR 9) — the same saturated burst served with
  request tracing disabled vs 1% head sampling; throughput and p99 are
  gated by ``tools/bench_compare.py --trace-overhead`` (acceptance:
  no regression beyond noise tolerance), and a forced-slow run asserts
  the captured trace carries the worker-side ``worker.ppr`` +
  ``worker.sweep`` spans with durations bounded by the request span.
* **single-flight coalescing** — N clients issuing one identical query
  concurrently must trigger exactly one computation.

The CLI (``repro bench-serve``) and ``benchmarks/run_service_bench.py``
both call :func:`run_service_benchmark` and write the report as
``BENCH_PR10.json`` (see ``benchmarks/README.md`` for the field
reference; diff two reports with ``tools/bench_compare.py``).
"""

from __future__ import annotations

import os
import platform
import random
import statistics
import tempfile
import threading
import time

from repro.core.findnc import rw_mult
from repro.datasets.loader import load_dataset
from repro.datasets.seeds import TABLE1_DOMAINS
from repro.service.engine import NCEngine


def benchmark_queries(limit: int) -> list[tuple[str, ...]]:
    """Distinct service-style queries: nested Table-1 sets as display names.

    Names are lowercased with spaces ("angela merkel") so every request
    exercises the fuzzy entity-resolution layer, like real API traffic.
    """
    queries = [
        tuple(name.replace("_", " ").lower() for name in nested)
        for domain in TABLE1_DOMAINS
        for nested in domain.nested_queries()
    ]
    if limit < 1:
        raise ValueError(f"need at least one query, got limit={limit}")
    return queries[:limit]


def traffic_trace(
    queries: list[tuple[str, ...]],
    *,
    hot_queries: int = 4,
    hot_repeats: int = 8,
    seed: int = 11,
) -> list[tuple[str, ...]]:
    """A deterministic hot/cold request trace over ``queries``.

    The first ``hot_queries`` entries arrive ``hot_repeats`` times each
    (the trending-entity pattern that makes result caches pay for
    themselves); the rest arrive once. Order is a seeded shuffle.
    """
    trace = [q for q in queries[:hot_queries] for _ in range(hot_repeats)]
    trace += queries[hot_queries:]
    random.Random(seed).shuffle(trace)
    return trace


def _summary(latencies: list[float]) -> dict:
    return {
        "n": len(latencies),
        "mean_s": statistics.fmean(latencies),
        "median_s": statistics.median(latencies),
        "max_s": max(latencies),
        "total_s": sum(latencies),
    }


def _timed(func) -> float:
    started = time.perf_counter()
    func()
    return time.perf_counter() - started


def _bench_cold_start(graph, *, repeat: int, snap_path: str) -> dict:
    """The PR-4 boot-time phase: parse+compile vs one mmap open.

    Writes the graph's N-Triples dump to a private temp dir and times the
    legacy boot (stream-parse the dump, rebuild the dict graph with its
    inverse closure, compile the columnar snapshot) against
    :func:`repro.disk.open_snapshot` over ``snap_path``. The snapshot
    file is reused when it already matches the graph (CI caches it as a
    workflow artifact); otherwise it is (re)compiled here and the
    one-time cost recorded. The mmap boot must be at least 10x faster —
    asserted, because this is the acceptance bar of the subsystem.
    """
    from repro.disk import open_snapshot, save_graph_snapshot
    from repro.graph.io import load_graph, save_graph

    snapshot_compile_s: "float | None" = None
    reused = False
    if os.path.exists(snap_path):
        try:
            with open_snapshot(snap_path) as existing:
                reused = (
                    existing.header.version == graph.version
                    and existing.header.node_count == graph.node_count
                    and existing.compiled.edge_count == graph.edge_count
                )
        except Exception:
            reused = False
    if not reused:
        snapshot_compile_s = _timed(lambda: save_graph_snapshot(graph, snap_path))

    with tempfile.TemporaryDirectory(prefix="repro-bench-") as workdir:
        nt_path = os.path.join(workdir, "graph.nt")
        triples = save_graph(graph, nt_path)

        def parse_boot() -> None:
            """The legacy cold start: dump → dict graph → compiled arrays."""
            load_graph(nt_path).compiled()

        parse_compile_s = min(_timed(parse_boot) for _ in range(repeat))

    def mmap_boot() -> None:
        """The snapshot-store cold start: open + touch the index arrays."""
        with open_snapshot(snap_path) as snap:
            compiled = snap.compiled
            int(compiled.indptr[-1])
            if compiled.edge_count:
                int(compiled.targets[0])

    mmap_open_s = min(_timed(mmap_boot) for _ in range(repeat))
    speedup = parse_compile_s / mmap_open_s
    phase = {
        "triples": triples,
        "parse_compile_s": parse_compile_s,
        "mmap_open_s": mmap_open_s,
        "speedup": speedup,
        "snapshot_bytes": os.path.getsize(snap_path),
        "snapshot_reused": reused,
        "snapshot_compile_s": snapshot_compile_s,
        "note": (
            "parse_compile_s = stream-parse the N-Triples dump, rebuild the "
            "dict graph (inverse closure included) and compile the columnar "
            "snapshot; mmap_open_s = repro.disk.open_snapshot over the "
            "compiled file (pages fault in on demand)"
        ),
    }
    if speedup < 10.0:  # pragma: no cover - would be a regression
        raise AssertionError(
            f"snapshot cold start is only {speedup:.1f}x faster than "
            f"parse+compile (acceptance bar: 10x)"
        )
    return phase


def _bench_hot_swap(
    graph,
    *,
    context_size: int,
    alpha: float,
    seed: int,
    workers: int,
    queries: "list[tuple[str, ...]]",
    clients: int = 4,
    drain_timeout_s: float = 30.0,
) -> dict:
    """The PR-5 phase: swap registry versions under sustained traffic.

    Publishes the same graph twice into a throwaway
    :class:`~repro.disk.registry.SnapshotRegistry` (v1 and v2 — identical
    content, distinct monotonic ids), serves v1 with ``clients``
    threads hammering the distinct-query set, and hot-swaps to v2 while
    they run. Acceptance (all asserted, this is the PR's bar):

    * zero failed or dropped requests across the swap;
    * post-swap results byte-identical to a fresh engine opened directly
      on the v2 file (same parameters and seed);
    * the drained v1 pin retired after its last in-flight request — the
      swapped-out version must show up in ``drained_versions``.
    """
    import tempfile

    from repro.disk import SnapshotRegistry, open_snapshot_view
    from repro.service.engine import NCEngine as Engine

    with tempfile.TemporaryDirectory(prefix="repro-hotswap-") as registry_dir:
        registry = SnapshotRegistry(registry_dir)
        entry_v1 = registry.publish_graph(graph)
        entry_v2 = registry.publish_graph(graph)

        with Engine(
            registry.open_view(entry_v1.version),
            context_size=context_size,
            alpha=alpha,
            max_workers=workers,
            seed=seed,
        ) as engine:
            engine.pin()
            engine.request(queries[0])  # warm the resolution index

            stop = threading.Event()
            barrier = threading.Barrier(clients + 1)
            failures: "list[BaseException]" = []
            served = [0] * clients

            def client(slot: int) -> None:
                """One sustained-traffic client cycling the query set."""
                rng = random.Random(seed + slot)
                try:
                    barrier.wait()
                    while not stop.is_set():
                        engine.request(rng.choice(queries))
                        served[slot] += 1
                except BaseException as error:  # pragma: no cover - failure
                    failures.append(error)

            threads = [
                threading.Thread(target=client, args=(slot,))
                for slot in range(clients)
            ]
            for thread in threads:
                thread.start()
            barrier.wait()
            # Let traffic build up on v1, swap mid-stream, keep serving.
            time.sleep(0.3)
            served_before_swap = sum(served)
            swap_s = _timed(
                lambda: engine.swap_snapshot(registry.open_view(entry_v2.version))
            )
            time.sleep(0.3)
            stop.set()
            for thread in threads:
                thread.join()
            if failures:  # pragma: no cover - would be the acceptance bug
                raise AssertionError(
                    f"hot swap dropped/failed {len(failures)} request(s); "
                    f"first: {failures[0]!r}"
                )

            # Post-swap traffic must compute at v2 and match a fresh
            # engine booted directly on the v2 file.
            engine.cache.clear()
            post_swap = [engine.request(query) for query in queries]
            assert all(
                outcome.graph_version == entry_v2.version for outcome in post_swap
            ), "post-swap requests still served from the old version"

            # The drained v1 pin must retire once in-flight work finishes.
            deadline = time.monotonic() + drain_timeout_s
            drained: "tuple[int, ...]" = ()
            while time.monotonic() < deadline:
                drained = engine.stats().drained_versions
                if entry_v1.version in drained:
                    break
                time.sleep(0.02)
            if entry_v1.version not in drained:  # pragma: no cover - bug
                raise AssertionError(
                    f"swapped-out version {entry_v1.version} never drained "
                    f"(drained={drained})"
                )
            stats = engine.stats()

        fresh_view = open_snapshot_view(entry_v2.path)
        try:
            with Engine(
                fresh_view,
                context_size=context_size,
                alpha=alpha,
                max_workers=workers,
                seed=seed,
            ) as fresh_engine:
                fresh_engine.pin()
                fresh = [fresh_engine.request(query) for query in queries]
        finally:
            fresh_view.close()

        def _fingerprint(result) -> "list[tuple[str, float]]":
            return [(item.label, item.score) for item in result.results]

        identical = all(
            _fingerprint(a.result) == _fingerprint(b.result)
            and a.result.notable_labels() == b.result.notable_labels()
            for a, b in zip(post_swap, fresh)
        )
        if not identical:  # pragma: no cover - would be the acceptance bug
            raise AssertionError(
                "post-swap results differ from a fresh engine on the new "
                "snapshot"
            )
        total = sum(served) + len(queries) + 1
        return {
            "clients": clients,
            "requests": total,
            "requests_before_swap": served_before_swap,
            "failures": 0,
            "swap_s": swap_s,
            "old_version": entry_v1.version,
            "new_version": entry_v2.version,
            "drained_versions": list(stats.drained_versions),
            "swaps": stats.swaps,
            "identical_results": identical,
            "note": (
                "two content-identical registry versions; clients hammer the "
                "engine across swap_snapshot(v2); zero failures, post-swap "
                "parity vs a fresh v2 engine, and v1 retired after its last "
                "in-flight request are all asserted"
            ),
        }


def _bench_live_ingest(
    graph,
    *,
    context_size: int,
    alpha: float,
    seed: int,
    workers: int,
    queries: "list[tuple[str, ...]]",
    clients: int = 4,
    cycles: int = 2,
    batch_edges: int = 6,
    window_gap_s: float = 0.25,
) -> dict:
    """The PR-10 phase: delta append → merge → swap under sustained reads.

    Publishes the graph into a throwaway registry (v1), serves it with
    ``clients`` sustained threads, then lands ``cycles`` live-ingest
    rounds mid-stream: each round appends a statement batch to the
    registry's delta log (fresh subject nodes, one remove of the
    previous round's edge from round two on), folds the pending run
    into a new snapshot with the incremental CSR merge, and adopts it
    via :meth:`~repro.service.engine.NCEngine.swap_snapshot` — the
    exact pipeline behind ``POST /v1/admin/ingest``.

    The read-latency comparison is like-for-like: the *quiescent*
    window runs the same traffic with one ``cache.clear()`` per
    would-be cycle (a version swap invalidates the version-keyed cache
    anyway), so both windows pay the same cold-miss storms and the p99
    ratio isolates what the append+merge+swap work itself costs
    readers. Acceptance (asserted here; the ratio is gated by
    ``tools/bench_compare.py --live-ingest``):

    * **zero** failed or dropped reads across every cycle;
    * the final manifest entry records the full chain (``base`` = v1,
      one delta run per cycle) and the merged snapshot's node/edge
      counts match the statement arithmetic exactly;
    * post-ingest results are byte-identical to a fresh engine opened
      directly on the final snapshot file.
    """
    import tempfile

    from repro.disk import SnapshotRegistry, open_snapshot_view
    from repro.service.engine import NCEngine as Engine

    def batch_ops(cycle: int) -> "list[tuple[str, tuple[str, str, str]]]":
        """Cycle ``cycle``'s statement batch: fresh-subject adds + a remove."""
        ops: "list[tuple[str, tuple[str, str, str]]]" = [
            (
                "+",
                (
                    f"bench_ingest_c{cycle}_n{i}",
                    "bench_ingest_rel",
                    graph.node_name(i % graph.node_count),
                ),
            )
            for i in range(batch_edges)
        ]
        if cycle > 0:
            ops.append(
                (
                    "-",
                    (
                        f"bench_ingest_c{cycle - 1}_n0",
                        "bench_ingest_rel",
                        graph.node_name(0),
                    ),
                )
            )
        return ops

    total_adds = cycles * batch_edges
    total_removes = max(cycles - 1, 0)

    with tempfile.TemporaryDirectory(prefix="repro-liveingest-") as registry_dir:
        registry = SnapshotRegistry(registry_dir)
        entry_v1 = registry.publish_graph(graph)

        with Engine(
            registry.open_view(entry_v1.version),
            context_size=context_size,
            alpha=alpha,
            max_workers=workers,
            seed=seed,
        ) as engine:
            engine.pin()
            engine.request(queries[0])  # warm the resolution index

            stop = threading.Event()
            barrier = threading.Barrier(clients + 1)
            window = ["warmup"]  # [0] read by clients at request start
            samples: "list[tuple[str, float]]" = []
            failures: "list[BaseException]" = []
            lock = threading.Lock()

            def client(slot: int) -> None:
                """Sustained reads; every latency tagged with its window."""
                rng = random.Random(seed + slot)
                try:
                    barrier.wait()
                    while not stop.is_set():
                        tag = window[0]
                        started = time.perf_counter()
                        engine.request(rng.choice(queries))
                        elapsed = time.perf_counter() - started
                        with lock:
                            samples.append((tag, elapsed))
                except BaseException as error:  # pragma: no cover - failure
                    failures.append(error)

            threads = [
                threading.Thread(target=client, args=(slot,))
                for slot in range(clients)
            ]
            for thread in threads:
                thread.start()
            barrier.wait()

            # -- quiescent control: same miss storms, no ingest work -------
            window[0] = "quiescent"
            for _ in range(cycles):
                time.sleep(window_gap_s)
                engine.cache.clear()
            time.sleep(window_gap_s)

            # -- live ingest: append -> merge -> swap, readers running -----
            window[0] = "ingest"
            cycle_reports = []
            entry = entry_v1
            for cycle in range(cycles):
                time.sleep(window_gap_s)
                started = time.perf_counter()
                run = registry.append_delta(batch_ops(cycle))
                appended_s = time.perf_counter() - started
                entry = registry.merge_pending()
                engine.swap_snapshot(registry.open_view(entry.version))
                adoption_s = time.perf_counter() - started
                cycle_reports.append(
                    {
                        "run": run.file,
                        "adds": run.adds,
                        "removes": run.removes,
                        "merged_version": entry.version,
                        "append_s": appended_s,
                        "adoption_s": adoption_s,
                    }
                )
            time.sleep(window_gap_s)
            window[0] = "drain"
            stop.set()
            for thread in threads:
                thread.join()
            if failures:  # pragma: no cover - would be the acceptance bug
                raise AssertionError(
                    f"live ingest dropped/failed {len(failures)} read(s); "
                    f"first: {failures[0]!r}"
                )

            # -- chain provenance + merge arithmetic ------------------------
            if entry.base != entry_v1.version or len(entry.deltas) != cycles:
                raise AssertionError(  # pragma: no cover - would be a bug
                    f"final manifest entry lost its chain: base={entry.base}, "
                    f"deltas={entry.deltas}"
                )
            expected_nodes = graph.node_count + total_adds
            expected_edges = graph.edge_count + 2 * (total_adds - total_removes)
            if (entry.nodes, entry.edges) != (expected_nodes, expected_edges):
                raise AssertionError(  # pragma: no cover - would be a bug
                    f"merged snapshot has |V|={entry.nodes}, |E|={entry.edges}; "
                    f"expected |V|={expected_nodes}, |E|={expected_edges}"
                )

            # -- parity vs a fresh engine on the final snapshot file --------
            engine.cache.clear()
            post = [engine.request(query) for query in queries]
            assert all(
                outcome.graph_version == entry.version for outcome in post
            ), "post-ingest requests still served from an old version"

        fresh_view = open_snapshot_view(entry.path)
        try:
            with Engine(
                fresh_view,
                context_size=context_size,
                alpha=alpha,
                max_workers=workers,
                seed=seed,
            ) as fresh_engine:
                fresh_engine.pin()
                fresh = [fresh_engine.request(query) for query in queries]
        finally:
            fresh_view.close()
        identical = all(
            _result_fingerprint(a.result) == _result_fingerprint(b.result)
            for a, b in zip(post, fresh)
        )
        if not identical:  # pragma: no cover - would be the acceptance bug
            raise AssertionError(
                "post-ingest results differ from a fresh engine on the "
                "merged snapshot"
            )

    def p99(latencies: "list[float]") -> float:
        ordered = sorted(latencies)
        return ordered[min(len(ordered) - 1, round(0.99 * (len(ordered) - 1)))]

    quiescent = [lat for tag, lat in samples if tag == "quiescent"]
    ingest = [lat for tag, lat in samples if tag == "ingest"]
    return {
        "clients": clients,
        "cycles": cycle_reports,
        "batch_edges": batch_edges,
        "requests": len(samples),
        "failures": 0,
        "base_version": entry_v1.version,
        "final_version": entry.version,
        "chain_deltas": len(entry.deltas),
        "nodes_after": entry.nodes,
        "edges_after": entry.edges,
        "quiescent_n": len(quiescent),
        "quiescent_p99_s": p99(quiescent),
        "quiescent_mean_s": statistics.fmean(quiescent),
        "ingest_n": len(ingest),
        "ingest_p99_s": p99(ingest),
        "ingest_mean_s": statistics.fmean(ingest),
        "p99_ratio": p99(ingest) / p99(quiescent),
        "identical_results": identical,
        "note": (
            "sustained reads across append->merge->swap cycles; the "
            "quiescent control clears the cache once per would-be cycle "
            "so both windows pay the same cold-miss storms; zero failed "
            "reads, exact chain provenance + merge arithmetic, and "
            "fresh-engine parity are asserted; tools/bench_compare.py "
            "--live-ingest gates on p99_ratio"
        ),
    }


def _bench_fault_storm(
    graph,
    *,
    context_size: int,
    alpha: float,
    seed: int,
    workers: int,
    queries: "list[tuple[str, ...]]",
    clients: int = 4,
    storm_s: float = 2.5,
    crash_probability: float = 0.25,
    recovery_timeout_s: float = 30.0,
) -> dict:
    """The PR-6 chaos phase: survive crash-injected workers + a hot swap.

    Builds fault-free reference answers on a thread engine, then serves
    the same queries from a **process**-backend engine over a snapshot
    registry while three kinds of chaos run concurrently:

    * every worker is spawned with ``worker.crash`` armed (probability
      ``crash_probability`` per task, via the ``REPRO_FAULTS`` env var —
      the only transport that crosses the spawn boundary);
    * a killer thread SIGKILLs a random live worker every ~250ms;
    * a hot swap (v1 → v2, content-identical registry versions) lands
      mid-storm.

    Acceptance (all asserted — this is the PR's bar):

    * **zero wrong answers**: every completed response fingerprints
      byte-identical to the fault-free reference for its query;
    * **bounded, structured errors**: any client-visible failure is a
      known serving error (deadline, saturation, stale snapshot, crash
      surfaced after budget exhaustion) — never a hang or a foreign
      exception — and the error rate stays under 20% (retries plus the
      degraded local fallback absorb nearly everything);
    * **recovery**: after the storm the faults are disarmed, the pool
      revived, and one clean round of traffic brings health back to
      ``ok`` with every worker slot alive.
    """
    import signal

    from repro.disk import SnapshotRegistry
    from repro.errors import DeadlineExceededError, EngineSaturatedError
    from repro.parallel.shm import StaleSnapshotError
    from repro.service import faults
    from repro.service.workers import (
        ProcessWorkerPool,
        RemoteQueryError,
        WorkerCrashError,
    )

    structured = (
        DeadlineExceededError,
        EngineSaturatedError,
        StaleSnapshotError,
        RemoteQueryError,
        WorkerCrashError,
    )

    # Fault-free reference answers (thread backend; per-request RNG seeds
    # derive from the version-independent part of the cache key, so these
    # fingerprints are valid on both registry versions and both backends).
    with NCEngine(
        graph,
        context_size=context_size,
        alpha=alpha,
        max_workers=workers,
        seed=seed,
    ) as reference_engine:
        reference_engine.pin()
        reference = {
            query: _result_fingerprint(reference_engine.request(query).result)
            for query in queries
        }

    with tempfile.TemporaryDirectory(prefix="repro-faultstorm-") as registry_dir:
        registry = SnapshotRegistry(registry_dir)
        entry_v1 = registry.publish_graph(graph)
        entry_v2 = registry.publish_graph(graph)

        previous_spec = os.environ.get(faults.FAULTS_ENV)
        os.environ[faults.FAULTS_ENV] = f"worker.crash={crash_probability}"
        try:
            with NCEngine(
                registry.open_view(entry_v1.version),
                context_size=context_size,
                alpha=alpha,
                max_workers=workers,
                executor="process",
                seed=seed,
                request_timeout=30.0,
                retries=3,
                retry_backoff=0.02,
                breaker_threshold=5,
                breaker_reset_s=0.5,
            ) as engine:
                engine.pin()
                # Pre-build the pool with chaos-grade detection latency:
                # the default 0.5s watchdog tick + 1s crash grace means a
                # crashed job costs ~1.5s to surface, which under a 25%
                # crash rate starves the whole storm. The pool spawns here
                # (inside the armed-REPRO_FAULTS window) so every worker
                # inherits the crash injection.
                engine._pool = ProcessWorkerPool(  # noqa: SLF001 - chaos harness
                    workers,
                    watchdog_tick=0.05,
                    crash_grace_s=0.25,
                    respawn_limit=64,
                )
                engine.request(queries[0])  # warm the resolution index
                stop = threading.Event()
                barrier = threading.Barrier(clients + 2)
                completed = [0] * clients
                wrong: "list[tuple[tuple[str, ...], object]]" = []
                errors: "list[BaseException]" = []
                foreign: "list[BaseException]" = []
                lock = threading.Lock()

                def client(slot: int) -> None:
                    """Sustained traffic; verifies every completed answer."""
                    rng = random.Random(seed + slot)
                    barrier.wait()
                    while not stop.is_set():
                        query = rng.choice(queries)
                        try:
                            outcome = engine.request(query)
                        except structured as error:
                            with lock:
                                errors.append(error)
                            continue
                        except BaseException as error:  # pragma: no cover
                            with lock:
                                foreign.append(error)
                            continue
                        fingerprint = _result_fingerprint(outcome.result)
                        if fingerprint != reference[query]:  # pragma: no cover
                            with lock:
                                wrong.append((query, fingerprint))
                        completed[slot] += 1

                def killer() -> None:
                    """SIGKILL a random live worker every ~250ms."""
                    rng = random.Random(seed + 997)
                    barrier.wait()
                    while not stop.wait(0.25):
                        pool = engine._pool  # noqa: SLF001 - chaos harness
                        if pool is None:
                            continue
                        with pool._lock:  # noqa: SLF001
                            processes = list(pool._processes)  # noqa: SLF001
                        alive = [p for p in processes if p.is_alive() and p.pid]
                        if not alive:
                            continue
                        try:
                            os.kill(rng.choice(alive).pid, signal.SIGKILL)
                        except ProcessLookupError:  # pragma: no cover - raced
                            pass

                threads = [
                    threading.Thread(target=client, args=(slot,))
                    for slot in range(clients)
                ]
                threads.append(threading.Thread(target=killer))
                for thread in threads:
                    thread.start()
                barrier.wait()
                # First half of the storm on v1, swap, second half on v2.
                time.sleep(storm_s / 2)
                engine.swap_snapshot(registry.open_view(entry_v2.version))
                time.sleep(storm_s / 2)
                stop.set()
                for thread in threads:
                    thread.join()

                # -- storm over: disarm, revive, verify recovery -----------
                os.environ.pop(faults.FAULTS_ENV, None)
                revived = engine.revive_workers()
                recovered = False
                deadline = time.monotonic() + recovery_timeout_s
                while time.monotonic() < deadline:
                    engine.cache.clear()
                    try:
                        post = [
                            _result_fingerprint(engine.request(q).result)
                            for q in queries
                        ]
                    except structured:  # pragma: no cover - lingering crash
                        engine.revive_workers()
                        time.sleep(0.05)
                        continue
                    worker_stats = engine.stats().workers or {}
                    if (
                        post == [reference[q] for q in queries]
                        and worker_stats.get("alive") == workers
                        and engine.health()["status"] == "ok"
                    ):
                        recovered = True
                        break
                stats = engine.stats()
                health = engine.health()
        finally:
            if previous_spec is None:
                os.environ.pop(faults.FAULTS_ENV, None)
            else:  # pragma: no cover - nested chaos runs
                os.environ[faults.FAULTS_ENV] = previous_spec

    total = sum(completed) + len(errors) + len(foreign)
    error_rate = (len(errors) + len(foreign)) / max(total, 1)
    phase = {
        "clients": clients,
        "storm_s": storm_s,
        "crash_probability": crash_probability,
        "requests": total,
        "completed": sum(completed),
        "wrong_answers": len(wrong),
        "structured_errors": len(errors),
        "error_types": sorted({type(error).__name__ for error in errors}),
        "foreign_errors": len(foreign),
        "error_rate": error_rate,
        "swapped_mid_storm": True,
        "revived_workers": revived,
        "recovered": recovered,
        "health_after": health["status"],
        "engine": {
            "retries": stats.retries,
            "fallbacks": stats.fallbacks,
            "timeouts": stats.timeouts,
            "breaker": stats.breaker,
        },
        "worker_pool": stats.workers,
        "note": (
            "workers crash-injected (REPRO_FAULTS) and SIGKILLed under "
            "sustained traffic with a mid-storm hot swap; asserted: zero "
            "wrong answers, only structured errors, bounded error rate, "
            "health back to ok after revive"
        ),
    }
    if wrong:  # pragma: no cover - would be the acceptance bug
        raise AssertionError(
            f"fault storm produced {len(wrong)} wrong answer(s); first "
            f"query: {wrong[0][0]!r}"
        )
    if foreign:  # pragma: no cover - would be the acceptance bug
        raise AssertionError(
            f"fault storm leaked {len(foreign)} unstructured error(s); "
            f"first: {foreign[0]!r}"
        )
    if error_rate > 0.20:  # pragma: no cover - would be the acceptance bug
        raise AssertionError(
            f"fault-storm error rate {error_rate:.1%} exceeds the 20% bound "
            f"({len(errors)} errors / {total} requests)"
        )
    if not recovered:  # pragma: no cover - would be the acceptance bug
        raise AssertionError(
            f"pool did not return to ok health within {recovery_timeout_s}s "
            f"after the storm (health={health})"
        )
    return phase


def _bench_load_profile(
    engine,
    *,
    seed: int,
    rate: float = 40.0,
    duration_s: float = 3.0,
    zipf_s: float = 1.1,
    entity_pool: int = 64,
    closed_requests: int = 120,
    concurrency: int = 4,
) -> dict:
    """The PR-7 phase: Zipf-skewed open-loop load with bootstrap CIs.

    Replays :mod:`repro.service.loadgen` traffic against the live
    engine: an **open-loop** run (Poisson arrivals at ``rate`` req/s for
    ``duration_s``; latency charged from each request's *scheduled*
    arrival so dispatch lag counts — the coordinated-omission-safe
    number) and a closed-loop companion (``concurrency`` workers
    draining ``closed_requests``) for the classic saturated-throughput
    view. Entity popularity is Zipf(``zipf_s``) over the graph's first
    ``entity_pool`` nodes, grouped into entity-centric sessions — the
    skewed, bursty shape real per-entity traffic has, which is exactly
    what the result cache and single-flight layers are for.

    Each run's latency quantiles carry seeded percentile-bootstrap
    confidence intervals (:func:`repro.eval.bootstrap.quantile_report`),
    and the raw per-request samples are embedded (rounded, completion
    order) so ``tools/bench_compare.py`` can bootstrap a *two-report*
    comparison later without re-running anything.
    """
    from repro.eval.bootstrap import quantile_report
    from repro.service.loadgen import (
        LoadProfile,
        build_schedule,
        engine_target,
        entity_ranking,
        run_load,
    )

    entities = entity_ranking(engine.graph, limit=entity_pool)
    target = engine_target(engine)
    phase: dict = {
        "zipf_s": zipf_s,
        "entity_pool": len(entities),
        "note": (
            "open-loop latency is charged from the scheduled Poisson "
            "arrival (queue buildup counts; no coordinated omission); "
            "quantile CIs are seeded percentile bootstraps; latencies_s "
            "holds the raw samples for tools/bench_compare.py"
        ),
    }
    profiles = {
        "open": LoadProfile(
            mode="open",
            rate=rate,
            duration_s=duration_s,
            zipf_s=zipf_s,
            seed=seed,
        ),
        "closed": LoadProfile(
            mode="closed",
            requests=closed_requests,
            concurrency=concurrency,
            zipf_s=zipf_s,
            seed=seed,
        ),
    }
    for name, profile in profiles.items():
        engine.cache.clear()
        schedule, skew = build_schedule(entities, profile)
        report = run_load(target, schedule, profile)
        summary = report.summary()
        summary["skew"] = skew
        summary["quantiles"] = quantile_report(
            list(report.latencies_s), seed=seed
        )
        summary["latencies_s"] = [
            round(value, 6) for value in report.latencies_s
        ]
        if report.errors:  # pragma: no cover - would be the acceptance bug
            raise AssertionError(
                f"load profile ({name}) hit errors: {dict(report.errors)}"
            )
        phase[name] = summary
    return phase


def saturated_queries(
    graph, count: int, width: int, *, seed: int = 11
) -> "list[tuple[str, ...]]":
    """``count`` distinct ``width``-entity queries sampled across the graph.

    The Table-1 seed sets are too few and too hub-adjacent to saturate a
    worker pool with *distinct* traffic, so this samples entity names
    uniformly (seeded, deterministic) over the whole node space — the
    "every request is a different customer" traffic class that neither
    the result cache nor single-flight coalescing can absorb, which is
    exactly the class micro-batching exists for.
    """
    import numpy as np

    rng = np.random.default_rng(seed)
    ids = rng.choice(graph.node_count, size=count * width * 3, replace=False)
    names: "list[str]" = []
    seen: "set[str]" = set()
    for node in ids:
        name = graph.node_name(int(node))
        if name and name not in seen:
            seen.add(name)
            names.append(name)
    if len(names) < count * width:  # pragma: no cover - tiny graphs only
        raise ValueError(
            f"graph too small for {count} x {width} distinct query entities"
        )
    return [tuple(names[i * width : (i + 1) * width]) for i in range(count)]


def _bench_saturated_batch(
    *,
    alpha: float,
    seed: int,
    repeat: int,
    dataset: str = "yago",
    scale: float = 32.0,
    context_size: int = 5,
    distinct: int = 16,
    width: int = 2,
    max_batch: int = 16,
    batch_window_ms: float = 30.0,
) -> dict:
    """The PR-8 phase: micro-batched vs per-query process workers.

    Serves the same saturated distinct-query burst (``distinct`` seeded
    ``width``-entity queries, all submitted at once, caches cleared per
    round) through two process-backend engines on one worker process:
    the **per-query** arm dispatches one task per request
    (``max_batch=1``, the pre-PR-8 backend) while the **batched** arm
    gathers the burst into micro-batches (``max_batch``,
    ``batch_window_ms``) so each worker runs one shared multi-column
    power iteration and one fused distribution sweep for the whole
    batch. One worker isolates the batching effect — extra workers
    multiply both arms alike.

    Results are asserted byte-identical between the arms (the engine's
    differential guarantee; ``tests/test_batch_parity.py`` pins the
    same property per kernel). The throughput ratio is the phase's
    headline number; ``tools/bench_compare.py --saturated`` turns it
    into the PR's accept/reject verdict.
    """
    graph = load_dataset(dataset, scale=scale)
    queries = saturated_queries(graph, distinct, width, seed=seed)

    def serve(engine_kwargs: dict) -> "tuple[float, list, dict]":
        with NCEngine(
            graph,
            context_size=context_size,
            alpha=alpha,
            max_workers=1,
            executor="process",
            seed=seed,
            **engine_kwargs,
        ) as engine:
            engine.pin()

            def drain() -> None:
                futures = [engine.submit(query)[0] for query in queries]
                for future in futures:
                    future.result()

            drain()  # warmup: worker attach + transition adoption
            best = float("inf")
            for _ in range(repeat):
                engine.cache.clear()
                best = min(best, _timed(drain))
            # Stats before the parity pass: the one-at-a-time re-requests
            # below would dilute the recorded mean batch size.
            stats = engine.stats().workers or {}
            engine.cache.clear()
            results = [engine.request(query).result for query in queries]
        return best, results, stats

    per_query_s, per_query_results, _ = serve({})
    batched_s, batched_results, batched_stats = serve(
        {"max_batch": max_batch, "batch_window_ms": batch_window_ms}
    )

    identical = all(
        _result_fingerprint(a) == _result_fingerprint(b)
        for a, b in zip(per_query_results, batched_results)
    )
    if not identical:  # pragma: no cover - would be a correctness bug
        raise AssertionError(
            "micro-batched execution returned different results than the "
            "per-query process backend on the same queries"
        )
    batches = int(batched_stats.get("batches", 0))
    members = int(batched_stats.get("batched_members", 0))
    return {
        "traffic": (
            f"{distinct} distinct width-{width} queries sampled over the "
            f"whole graph (seed {seed}), all submitted concurrently"
        ),
        "graph": {"dataset": dataset, "scale": scale, "nodes": graph.node_count,
                  "edges": graph.edge_count},
        "context_size": context_size,
        "workers": 1,
        "max_batch": max_batch,
        "batch_window_ms": batch_window_ms,
        "per_query_elapsed_s": per_query_s,
        "per_query_rps": len(queries) / per_query_s,
        "batched_elapsed_s": batched_s,
        "batched_rps": len(queries) / batched_s,
        "ratio": per_query_s / batched_s,
        "batches": batches,
        "mean_batch_size": members / batches if batches else 0.0,
        "identical_results": identical,
        "note": (
            "same burst through two single-worker process engines: "
            "max_batch=1 (per-query dispatch) vs micro-batched; one shared "
            "power iteration + fused distribution sweep per batch; result "
            "parity asserted; tools/bench_compare.py --saturated gates on "
            "the ratio"
        ),
    }


def _bench_trace_overhead(
    *,
    alpha: float,
    seed: int,
    repeat: int,
    dataset: str = "yago",
    scale: float = 32.0,
    context_size: int = 5,
    distinct: int = 16,
    width: int = 2,
    max_batch: int = 16,
    batch_window_ms: float = 30.0,
    sample_rate: float = 0.01,
) -> dict:
    """The PR-9 phase: request tracing must be ~free at 1% sampling.

    Serves the saturated-batch burst through two single-worker
    micro-batching process engines — tracing **disabled** vs **1% head
    sampling** (every request pays the coin flip; ~1% also record and
    retain spans) — and reports throughput plus per-request p99 for
    both arms. ``tools/bench_compare.py --trace-overhead`` turns the
    pair into the accept/reject verdict (no throughput/p99 regression
    beyond noise tolerance).

    A third short run with an absurdly low ``slow_query_ms`` forces
    tail capture on every request and asserts the captured slow trace
    is *complete across the pickle boundary*: the worker-side power
    iteration (``worker.ppr``) and fused distribution sweep
    (``worker.sweep``) spans are present, and their durations sum to no
    more than the request span — rebasing worker-local offsets can
    never make children outgrow their parent.
    """
    graph = load_dataset(dataset, scale=scale)
    queries = saturated_queries(graph, distinct, width, seed=seed)

    def serve(trace_kwargs: dict) -> "tuple[float, list[float]]":
        """Best-round elapsed + per-request latencies across all rounds."""
        with NCEngine(
            graph,
            context_size=context_size,
            alpha=alpha,
            max_workers=1,
            executor="process",
            seed=seed,
            max_batch=max_batch,
            batch_window_ms=batch_window_ms,
            **trace_kwargs,
        ) as engine:
            engine.pin()
            tracer = engine.tracer

            def drain() -> "list[float]":
                pending = []
                for query in queries:
                    trace = (
                        tracer.begin("bench.request") if tracer.enabled else None
                    )
                    started = time.perf_counter()
                    future = engine.submit(query, trace=trace)[0]
                    pending.append((future, started, trace))
                latencies = []
                for future, started, trace in pending:
                    future.result()
                    latencies.append(time.perf_counter() - started)
                    tracer.finish(trace)
                return latencies

            drain()  # warmup: worker attach + transition adoption
            best = float("inf")
            all_latencies: "list[float]" = []
            for _ in range(repeat):
                engine.cache.clear()
                round_started = time.perf_counter()
                all_latencies.extend(drain())
                best = min(best, time.perf_counter() - round_started)
        return best, all_latencies

    def p99(latencies: "list[float]") -> float:
        ordered = sorted(latencies)
        return ordered[min(len(ordered) - 1, round(0.99 * (len(ordered) - 1)))]

    disabled_s, disabled_lat = serve({})
    sampled_s, sampled_lat = serve({"trace_sample_rate": sample_rate})

    # -- forced slow-query capture: one request, full span tree ------------
    with NCEngine(
        graph,
        context_size=context_size,
        alpha=alpha,
        max_workers=1,
        executor="process",
        seed=seed,
        max_batch=max_batch,
        batch_window_ms=batch_window_ms,
        slow_query_ms=0.001,  # everything is "slow": tail capture always fires
    ) as engine:
        engine.pin()
        trace = engine.tracer.begin("bench.request")
        engine.request(queries[0], trace=trace)
        retained = engine.tracer.finish(trace)
        if not retained:  # pragma: no cover - would be a tracer bug
            raise AssertionError(
                "slow-query tail capture did not retain the forced-slow trace"
            )
        captured = engine.tracer.buffer.get(trace.trace_id)
    span_names = {span["name"] for span in captured["spans"]}
    worker_ms = sum(
        span["duration_ms"]
        for span in captured["spans"]
        if span["name"] in ("worker.ppr", "worker.sweep")
    )
    request_ms = captured["duration_ms"]
    if not {"worker.ppr", "worker.sweep"} <= span_names:  # pragma: no cover
        raise AssertionError(
            f"slow trace is missing worker-side phase spans "
            f"(got {sorted(span_names)})"
        )
    if worker_ms > request_ms:  # pragma: no cover - would be a stitch bug
        raise AssertionError(
            f"worker ppr+sweep spans ({worker_ms:.3f}ms) exceed the request "
            f"span ({request_ms:.3f}ms): cross-process rebasing is broken"
        )
    return {
        "traffic": (
            f"{distinct} distinct width-{width} queries, all submitted "
            f"concurrently (the saturated-batch workload)"
        ),
        "workers": 1,
        "max_batch": max_batch,
        "batch_window_ms": batch_window_ms,
        "sample_rate": sample_rate,
        "disabled_elapsed_s": disabled_s,
        "disabled_rps": len(queries) / disabled_s,
        "disabled_p99_s": p99(disabled_lat),
        "sampled_elapsed_s": sampled_s,
        "sampled_rps": len(queries) / sampled_s,
        "sampled_p99_s": p99(sampled_lat),
        "throughput_ratio": disabled_s / sampled_s,
        "slow_trace": {
            "trace_id": captured["trace_id"],
            "spans": len(captured["spans"]),
            "phases": sorted(span_names),
            "worker_ppr_sweep_ms": worker_ms,
            "request_ms": request_ms,
        },
        "note": (
            "same saturated burst, tracing off vs 1% head sampling; "
            "tools/bench_compare.py --trace-overhead gates on throughput "
            "and p99; the forced-slow run asserts the captured trace "
            "carries worker.ppr + worker.sweep spans bounded by the "
            "request span"
        ),
    }


def _result_fingerprint(result) -> "list[tuple[str, float]]":
    """The byte-identity fingerprint used by the parity/chaos phases."""
    return [(item.label, item.score) for item in result.results] + [
        ("__notable__", 0.0)
    ] + [(label, 0.0) for label in result.notable_labels()]


def run_service_benchmark(
    *,
    snapshot_path: "str | None" = None,
    **kwargs,
) -> dict:
    """Run the full service benchmark; returns the JSON-ready report.

    Throughput phases run ``repeat`` times and keep the best (min time),
    filtering scheduler jitter the same way ``run_perf_suite`` does.

    ``snapshot_path`` optionally names the snapshot file the cold-start
    and snapshot-serving phases use: an existing, matching file is
    reused (CI caches it across runs), anything else is (re)compiled
    there. Without it a temp file is used and removed afterwards — even
    when a phase fails. Remaining keyword arguments are those of
    :func:`_run_service_benchmark`.
    """
    snap_path = snapshot_path or os.path.join(
        tempfile.gettempdir(), f"repro-bench-{os.getpid()}.snap"
    )
    try:
        return _run_service_benchmark(snap_path=snap_path, **kwargs)
    finally:
        if snapshot_path is None and os.path.exists(snap_path):
            os.unlink(snap_path)  # private temp snapshot; caches pass a real path


def _run_service_benchmark(
    *,
    dataset: str = "yago",
    scale: float = 2.0,
    context_size: int = 100,
    workers: int = 4,
    distinct: int = 12,
    hot_queries: int = 4,
    hot_repeats: int = 8,
    coalesce_clients: int = 8,
    alpha: float = 0.05,
    seed: int = 11,
    repeat: int = 3,
    saturated_scale: float = 32.0,
    saturated_context: int = 5,
    saturated_distinct: int = 16,
    saturated_max_batch: int = 16,
    saturated_window_ms: float = 30.0,
    snap_path: str = "",
) -> dict:
    """The benchmark body; ``snap_path`` is owned (created/cleaned) by the
    public wrapper."""
    graph = load_dataset(dataset, scale=scale)
    queries = benchmark_queries(distinct)
    trace = traffic_trace(
        queries, hot_queries=hot_queries, hot_repeats=hot_repeats, seed=seed
    )
    report: dict = {
        "suite": "service_bench",
        "pr": 10,
        "created_unix": int(time.time()),
        "machine": {
            "python": platform.python_version(),
            "platform": platform.platform(),
            "processor": platform.processor() or platform.machine(),
            "cpu_count": os.cpu_count(),
        },
        "graph": {
            "dataset": dataset,
            "scale": scale,
            "nodes": graph.node_count,
            "edges": graph.edge_count,
        },
        "params": {
            "context_size": context_size,
            "workers": workers,
            "distinct_queries": len(queries),
            "trace_requests": len(trace),
            "hot_queries": hot_queries,
            "hot_repeats": hot_repeats,
            "coalesce_clients": coalesce_clients,
            "alpha": alpha,
            "repeat": repeat,
            "saturated_scale": saturated_scale,
            "saturated_context": saturated_context,
            "saturated_distinct": saturated_distinct,
            "saturated_max_batch": saturated_max_batch,
            "saturated_window_ms": saturated_window_ms,
        },
    }

    # -- cold start: parse+compile vs mmap open (PR 4) ---------------------
    report["cold_start"] = _bench_cold_start(graph, repeat=repeat, snap_path=snap_path)

    # -- single-thread sequential baseline over the traffic trace ----------
    # The pre-service serving path: stateless, a fresh finder computes
    # every request (what `repro search` does per invocation). One warmup
    # pass over the distinct queries fills process-level caches (compiled
    # snapshot, multinomial outcome tables) so the comparison isolates
    # the serving architecture, not cold-process effects.
    def serve_stateless(requests: list[tuple[str, ...]]) -> None:
        """One fresh finder per request — the pre-service serving path."""
        for query in requests:
            rw_mult(graph, context_size=context_size, alpha=alpha, rng=seed).run(query)

    serve_stateless(queries)  # warmup
    sequential_s = min(_timed(lambda: serve_stateless(trace)) for _ in range(repeat))
    report["sequential"] = {
        "mode": "stateless single-thread (per-request finder, no cache)",
        "requests": len(trace),
        "elapsed_s": sequential_s,
        "throughput_rps": len(trace) / sequential_s,
    }

    with NCEngine(
        graph,
        context_size=context_size,
        alpha=alpha,
        max_workers=workers,
        seed=seed,
    ) as engine:
        engine.pin()

        # -- cold latencies == engine sequential distinct throughput -------
        best_cold: list[float] | None = None
        for _ in range(repeat):
            engine.cache.clear()
            cold = [engine.request(query).elapsed_seconds for query in queries]
            if best_cold is None or sum(cold) < sum(best_cold):
                best_cold = cold
        cold_summary = _summary(best_cold)
        cold_summary["throughput_rps"] = len(best_cold) / cold_summary["total_s"]
        report["cold"] = cold_summary

        # -- warm latencies (all cache hits) -------------------------------
        warm_outcomes = [engine.request(query) for query in queries]
        assert all(outcome.cached for outcome in warm_outcomes), (
            "warm phase expected cache hits"
        )
        warm = [outcome.elapsed_seconds for outcome in warm_outcomes]
        warm_summary = _summary(warm)
        warm_summary["hit_speedup_mean"] = (
            cold_summary["mean_s"] / warm_summary["mean_s"]
        )
        warm_summary["hit_speedup_median"] = (
            cold_summary["median_s"] / warm_summary["median_s"]
        )
        report["warm"] = warm_summary

        # -- concurrent engine over the same traffic trace -----------------
        def serve_concurrent(requests: list[tuple[str, ...]]) -> None:
            """Push the whole trace through the engine, then drain it."""
            futures = [engine.submit(query)[0] for query in requests]
            for future in futures:
                future.result()

        concurrent_s = float("inf")
        for _ in range(repeat):
            engine.cache.clear()
            concurrent_s = min(concurrent_s, _timed(lambda: serve_concurrent(trace)))
        report["concurrent"] = {
            "mode": f"engine, {workers} workers, cache + single-flight",
            "requests": len(trace),
            "workers": workers,
            "elapsed_s": concurrent_s,
            "throughput_rps": len(trace) / concurrent_s,
            "speedup_vs_sequential": sequential_s / concurrent_s,
        }

        # -- concurrent distinct-only (pure parallelism transparency) ------
        distinct_s = float("inf")
        for _ in range(repeat):
            engine.cache.clear()
            distinct_s = min(distinct_s, _timed(lambda: serve_concurrent(queries)))
        report["concurrent_distinct"] = {
            "workers": workers,
            "elapsed_s": distinct_s,
            "throughput_rps": len(queries) / distinct_s,
            "speedup_vs_engine_sequential": cold_summary["total_s"] / distinct_s,
            "note": (
                "distinct queries only, so neither cache nor coalescing can "
                "help; on a single-CPU host the GIL bounds this near 1x"
            ),
        }

        # -- backend comparison: thread vs process on distinct traffic -----
        # Same distinct queries, empty caches, all submitted concurrently.
        # The thread number is the concurrent-distinct phase above (this
        # engine IS the thread backend); the process engine re-serves the
        # identical workload from shared-memory worker processes. One
        # warmup pass per backend lets workers attach the segment and
        # build their transition matrix outside the timed region.
        thread_results = [engine.request(query).result for query in queries]
        with NCEngine(
            graph,
            context_size=context_size,
            alpha=alpha,
            max_workers=workers,
            executor="process",
            seed=seed,
        ) as process_engine:
            process_engine.pin()

            def serve_process(requests: list[tuple[str, ...]]) -> None:
                """The same drain loop against the process-backed engine."""
                futures = [process_engine.submit(query)[0] for query in requests]
                for future in futures:
                    future.result()

            serve_process(queries)  # warmup: attach + per-worker transition
            process_results = [
                process_engine.request(query).result for query in queries
            ]
            process_s = float("inf")
            for _ in range(repeat):
                process_engine.cache.clear()
                process_s = min(process_s, _timed(lambda: serve_process(queries)))
            worker_stats = process_engine.stats().workers or {}

        def _fingerprint(result) -> list[tuple[str, float]]:
            return [(item.label, item.score) for item in result.results]

        identical = all(
            _fingerprint(a) == _fingerprint(b)
            and a.notable_labels() == b.notable_labels()
            for a, b in zip(thread_results, process_results)
        )
        report["backends"] = {
            "traffic": "distinct queries only (the GIL-bound class)",
            "workers": workers,
            "cpu_count": os.cpu_count(),
            "thread_elapsed_s": distinct_s,
            "thread_throughput_rps": len(queries) / distinct_s,
            "process_elapsed_s": process_s,
            "process_throughput_rps": len(queries) / process_s,
            "process_speedup_vs_thread": distinct_s / process_s,
            "identical_results": identical,
            "worker_pool": worker_stats,
            "note": (
                "the process backend pays IPC + result pickling per request; "
                "its advantage grows with cpu_count (parallel distinct "
                "computations), though heavyweight queries can beat the "
                "thread backend even on one CPU by sidestepping GIL "
                "contention between executor threads"
            ),
        }
        if not identical:  # pragma: no cover - would be a correctness bug
            raise AssertionError(
                "process backend returned different results than the thread "
                "backend on the same trace"
            )

        # -- snapshot serving: the same distinct traffic off the mmap ------
        # An engine over the snapshot *view* — no KnowledgeGraph in the
        # serving stack — must answer exactly what live-graph serving
        # answers. This is `repro serve --snapshot` in benchmark form.
        from repro.disk import open_snapshot_view

        view = open_snapshot_view(snap_path)
        try:
            with NCEngine(
                view,
                context_size=context_size,
                alpha=alpha,
                max_workers=workers,
                seed=seed,
            ) as snapshot_engine:
                pin_s = _timed(snapshot_engine.pin)

                def serve_snapshot(requests: list[tuple[str, ...]]) -> None:
                    """The drain loop against the snapshot-backed engine."""
                    futures = [
                        snapshot_engine.submit(query)[0] for query in requests
                    ]
                    for future in futures:
                        future.result()

                serve_snapshot(queries)  # warmup (resolution index, caches)
                snapshot_results = [
                    snapshot_engine.request(query).result for query in queries
                ]
                snapshot_s = float("inf")
                for _ in range(repeat):
                    snapshot_engine.cache.clear()
                    snapshot_s = min(
                        snapshot_s, _timed(lambda: serve_snapshot(queries))
                    )
        finally:
            # Release the mapping before the caller unlinks the temp file
            # (an open memmap blocks deletion on Windows).
            view.close()
        snapshot_identical = all(
            _fingerprint(a) == _fingerprint(b)
            and a.notable_labels() == b.notable_labels()
            for a, b in zip(thread_results, snapshot_results)
        )
        report["snapshot_serving"] = {
            "mode": "thread engine over the mmapped snapshot view "
            "(no KnowledgeGraph in the serving process)",
            "pin_s": pin_s,
            "elapsed_s": snapshot_s,
            "throughput_rps": len(queries) / snapshot_s,
            "identical_results": snapshot_identical,
        }
        if not snapshot_identical:  # pragma: no cover - would be a bug
            raise AssertionError(
                "snapshot-backed serving returned different results than "
                "live-graph serving"
            )

        # -- hot swap: registry versions under sustained traffic (PR 5) ----
        report["hot_swap"] = _bench_hot_swap(
            graph,
            context_size=context_size,
            alpha=alpha,
            seed=seed,
            workers=workers,
            queries=queries,
        )

        # -- live ingest: delta append -> merge -> swap under reads (PR 10)
        report["live_ingest"] = _bench_live_ingest(
            graph,
            context_size=context_size,
            alpha=alpha,
            seed=seed,
            workers=workers,
            queries=queries,
        )

        # -- fault storm: crash-injected workers + SIGKILLs (PR 6) ---------
        report["fault_storm"] = _bench_fault_storm(
            graph,
            context_size=context_size,
            alpha=alpha,
            seed=seed,
            workers=workers,
            queries=queries,
        )

        # -- load profile: Zipf open-loop traffic + bootstrap CIs (PR 7) ---
        report["load_profile"] = _bench_load_profile(engine, seed=seed)

        # -- saturated batch: micro-batched vs per-query workers (PR 8) ----
        # Runs on its own (larger, shallower-context) graph where a
        # worker's per-query fixed cost dominates — the regime the
        # batched multi-column kernels exist for.
        report["saturated_batch"] = _bench_saturated_batch(
            alpha=alpha,
            seed=seed,
            repeat=repeat,
            dataset=dataset,
            scale=saturated_scale,
            context_size=saturated_context,
            distinct=saturated_distinct,
            max_batch=saturated_max_batch,
            batch_window_ms=saturated_window_ms,
        )

        # -- trace overhead: 1% sampling on the saturated workload (PR 9) --
        report["trace_overhead"] = _bench_trace_overhead(
            alpha=alpha,
            seed=seed,
            repeat=repeat,
            dataset=dataset,
            scale=saturated_scale,
            context_size=saturated_context,
            distinct=saturated_distinct,
            max_batch=saturated_max_batch,
            batch_window_ms=saturated_window_ms,
        )

        # -- single-flight coalescing --------------------------------------
        engine.cache.clear()
        stats_before = engine.stats()
        computed_before = stats_before.computed
        coalesced_before = stats_before.coalesced
        hits_before = stats_before.cache_hits
        barrier = threading.Barrier(coalesce_clients)
        errors: list[BaseException] = []

        def hot_client() -> None:
            """One synchronized client hammering the same hot query."""
            try:
                barrier.wait()
                engine.request(queries[0])
            except BaseException as error:  # pragma: no cover - surfaced below
                errors.append(error)

        threads = [
            threading.Thread(target=hot_client) for _ in range(coalesce_clients)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        if errors:  # pragma: no cover - only on benchmark failure
            raise errors[0]
        stats = engine.stats()
        report["single_flight"] = {
            "clients": coalesce_clients,
            "computed": stats.computed - computed_before,
            "coalesced": stats.coalesced - coalesced_before,
            "cache_hits": stats.cache_hits - hits_before,
        }
        report["engine_stats"] = stats.as_dict()
    return report


def print_report(report: dict) -> None:
    """The human-readable digest printed by ``repro bench-serve``."""
    sequential = report["sequential"]
    cold = report["cold"]
    warm = report["warm"]
    concurrent = report["concurrent"]
    distinct = report["concurrent_distinct"]
    flight = report["single_flight"]
    print(
        f"traffic trace: {sequential['requests']} requests over "
        f"{report['params']['distinct_queries']} distinct queries"
    )
    print(
        f"sequential (stateless single-thread): "
        f"{sequential['throughput_rps']:.2f} req/s"
    )
    print(
        f"concurrent (engine, {concurrent['workers']} workers): "
        f"{concurrent['throughput_rps']:.2f} req/s "
        f"({concurrent['speedup_vs_sequential']:.2f}x sequential)"
    )
    print(
        f"cold latency: mean {cold['mean_s'] * 1e3:.1f}ms | warm (cached): "
        f"mean {warm['mean_s'] * 1e6:.0f}us "
        f"({warm['hit_speedup_mean']:.0f}x faster)"
    )
    print(
        f"distinct-only concurrency: "
        f"{distinct['speedup_vs_engine_sequential']:.2f}x engine-sequential "
        f"on {report['machine']['cpu_count']} CPU(s)"
    )
    backends = report.get("backends")
    if backends:
        print(
            f"backends (distinct traffic, {backends['workers']} workers): "
            f"thread {backends['thread_throughput_rps']:.2f} req/s | "
            f"process {backends['process_throughput_rps']:.2f} req/s "
            f"({backends['process_speedup_vs_thread']:.2f}x, identical "
            f"results: {backends['identical_results']})"
        )
    cold_start = report.get("cold_start")
    if cold_start:
        print(
            f"cold start: parse+compile {cold_start['parse_compile_s']:.3f}s | "
            f"mmap open {cold_start['mmap_open_s'] * 1e3:.2f}ms "
            f"({cold_start['speedup']:.0f}x)"
        )
    snapshot_serving = report.get("snapshot_serving")
    if snapshot_serving:
        print(
            f"snapshot serving: {snapshot_serving['throughput_rps']:.2f} req/s "
            f"off the mmap view (identical results: "
            f"{snapshot_serving['identical_results']})"
        )
    hot_swap = report.get("hot_swap")
    if hot_swap:
        print(
            f"hot swap: v{hot_swap['old_version']} -> "
            f"v{hot_swap['new_version']} in {hot_swap['swap_s'] * 1e3:.1f}ms "
            f"under {hot_swap['clients']} clients "
            f"({hot_swap['requests']} requests, {hot_swap['failures']} "
            f"failures, drained: {hot_swap['drained_versions']})"
        )
    live_ingest = report.get("live_ingest")
    if live_ingest:
        last = live_ingest["cycles"][-1]
        print(
            f"live ingest: {len(live_ingest['cycles'])} append->merge->swap "
            f"cycle(s) under {live_ingest['clients']} clients "
            f"(v{live_ingest['base_version']} -> "
            f"v{live_ingest['final_version']}, last adoption "
            f"{last['adoption_s'] * 1e3:.1f}ms, {live_ingest['failures']} "
            f"failed reads, p99 {live_ingest['ingest_p99_s'] * 1e3:.1f}ms vs "
            f"quiescent {live_ingest['quiescent_p99_s'] * 1e3:.1f}ms "
            f"[{live_ingest['p99_ratio']:.2f}x], identical results: "
            f"{live_ingest['identical_results']})"
        )
    fault_storm = report.get("fault_storm")
    if fault_storm:
        breaker = fault_storm["engine"]["breaker"] or {}
        print(
            f"fault storm: {fault_storm['requests']} requests under "
            f"crash-injected + SIGKILLed workers "
            f"({fault_storm['wrong_answers']} wrong answers, "
            f"{fault_storm['structured_errors']} structured errors "
            f"[{fault_storm['error_rate']:.1%}], "
            f"{fault_storm['engine']['retries']} retries, "
            f"{fault_storm['engine']['fallbacks']} fallbacks, "
            f"{breaker.get('trips', 0)} breaker trip(s), recovered: "
            f"{fault_storm['recovered']}, health: "
            f"{fault_storm['health_after']})"
        )
    load_profile = report.get("load_profile")
    if load_profile:
        open_run = load_profile["open"]
        p99 = open_run["quantiles"]["p99"]
        print(
            f"load profile (open loop, zipf_s={load_profile['zipf_s']}): "
            f"{open_run['completed']}/{open_run['requests']} requests at "
            f"{open_run['achieved_rps']:.1f} req/s, p99 "
            f"{p99['value'] * 1e3:.1f}ms "
            f"[{p99['ci_lo'] * 1e3:.1f}, {p99['ci_hi'] * 1e3:.1f}]"
        )
    saturated = report.get("saturated_batch")
    if saturated:
        print(
            f"saturated batch (distinct traffic, 1 process worker): "
            f"per-query {saturated['per_query_rps']:.2f} req/s | "
            f"micro-batched {saturated['batched_rps']:.2f} req/s "
            f"({saturated['ratio']:.2f}x, mean batch "
            f"{saturated['mean_batch_size']:.1f}, identical results: "
            f"{saturated['identical_results']})"
        )
    trace_overhead = report.get("trace_overhead")
    if trace_overhead:
        print(
            f"trace overhead ({trace_overhead['sample_rate']:.0%} sampling): "
            f"off {trace_overhead['disabled_rps']:.2f} req/s | "
            f"on {trace_overhead['sampled_rps']:.2f} req/s "
            f"({trace_overhead['throughput_ratio']:.2f}x), slow trace "
            f"{trace_overhead['slow_trace']['spans']} spans, worker "
            f"ppr+sweep {trace_overhead['slow_trace']['worker_ppr_sweep_ms']:.1f}ms "
            f"of {trace_overhead['slow_trace']['request_ms']:.1f}ms request"
        )
    print(
        f"single-flight: {flight['clients']} clients -> "
        f"{flight['computed']} computation(s), {flight['coalesced']} coalesced"
    )
