"""Snapshot-file serving: FindNC/engine parity against the live graph.

The acceptance property of the snapshot store: a server cold-started
from an mmapped snapshot answers **exactly** what live-graph serving
answers — per candidate label, per score — on both executor backends,
with no :class:`~repro.graph.model.KnowledgeGraph` in the serving stack.
"""

import pytest

from repro.core.findnc import FindNC
from repro.datasets.loader import load_dataset, to_snapshot
from repro.disk import open_snapshot_view, save_graph_snapshot
from repro.service.bench import benchmark_queries
from repro.service.engine import NCEngine

SCALE = 0.4
QUERIES = benchmark_queries(2)


@pytest.fixture(scope="module")
def graph():
    return load_dataset("yago", scale=SCALE)


@pytest.fixture(scope="module")
def snapshot_path(graph, tmp_path_factory):
    path = tmp_path_factory.mktemp("serving") / "yago.snap"
    save_graph_snapshot(graph, path)
    return path


def fingerprint(result):
    return (
        [(item.label, item.score) for item in result.results],
        result.notable_labels(),
        result.query,
        tuple(result.context.nodes),
    )


class TestFindNCOverView:
    def test_pipeline_runs_graph_free(self, graph, snapshot_path):
        """FindNC over the mmap view == FindNC over the live graph."""
        from repro.core.context import RandomWalkContext
        from repro.core.discrimination import MultinomialDiscriminator

        view = open_snapshot_view(snapshot_path)

        def run(source):
            finder = FindNC(
                source,
                context_selector=RandomWalkContext(source, pin=True),
                discriminator=MultinomialDiscriminator(rng=7),
                context_size=25,
            )
            return finder.run(
                [source.node_id("Angela_Merkel"), source.node_id("Barack_Obama")],
                snapshot=source.compiled() if hasattr(source, "frozen") else None,
            )

        assert fingerprint(run(view)) == fingerprint(run(graph))


class TestEngineParity:
    def test_thread_backend_identical(self, graph, snapshot_path):
        view = open_snapshot_view(snapshot_path)
        with NCEngine(graph, context_size=25, seed=11) as live, NCEngine(
            view, context_size=25, seed=11
        ) as cold:
            live.pin()
            cold.pin()
            for query in QUERIES:
                assert fingerprint(cold.search(query)) == fingerprint(
                    live.search(query)
                )
            # No KnowledgeGraph anywhere in the snapshot engine.
            assert cold.graph is view
            assert cold.stats().pinned_version == graph.version

    @pytest.mark.slow
    def test_process_backend_identical(self, graph, snapshot_path):
        """Workers mmap the file themselves — no shm publish for the boot
        version — and still match live-graph serving bit-for-bit."""
        view = open_snapshot_view(snapshot_path)
        with NCEngine(graph, context_size=25, seed=11) as live, NCEngine(
            view,
            context_size=25,
            seed=11,
            executor="process",
            max_workers=2,
        ) as cold:
            live.pin()
            state = cold.pin()
            # The pinned publication is the file itself, not an shm segment.
            assert state.shared is not None
            assert state.shared.segment.startswith("file://")
            for query in QUERIES:
                assert fingerprint(cold.search(query)) == fingerprint(
                    live.search(query)
                )
            workers = cold.stats().workers
            assert workers is not None and workers["completed"] == len(QUERIES)

    def test_frozen_pin_is_stable(self, snapshot_path):
        view = open_snapshot_view(snapshot_path)
        with NCEngine(view, context_size=25, seed=11) as engine:
            first = engine.pin()
            assert engine.pin() is first  # frozen views never re-pin
            engine.search(QUERIES[0])
            assert engine.stats().repins == 1

    def test_adopted_transition_matches_warm_build(self, graph, snapshot_path):
        """A snapshot without a stored transition serves identically (the
        engine rebuilds at pin instead of adopting)."""
        import tempfile
        from pathlib import Path

        with tempfile.TemporaryDirectory() as workdir:
            bare = Path(workdir) / "bare.snap"
            save_graph_snapshot(graph, bare, include_transition=False)
            bare_view = open_snapshot_view(bare)
            full_view = open_snapshot_view(snapshot_path)
            with NCEngine(bare_view, context_size=25, seed=11) as rebuilt, NCEngine(
                full_view, context_size=25, seed=11
            ) as adopted:
                rebuilt.pin()
                adopted.pin()
                assert fingerprint(rebuilt.search(QUERIES[0])) == fingerprint(
                    adopted.search(QUERIES[0])
                )


class TestDatasetSnapshotRoute:
    def test_to_snapshot_serves_identically(self, graph, tmp_path):
        """The ingester route (to_snapshot) == the compiled-graph route."""
        path = tmp_path / "ingested.snap"
        stats = to_snapshot("yago", path, scale=SCALE)
        assert stats.nodes == graph.node_count
        assert stats.edges == graph.edge_count
        view = open_snapshot_view(path)
        with NCEngine(graph, context_size=25, seed=11) as live, NCEngine(
            view, context_size=25, seed=11
        ) as cold:
            live.pin()
            cold.pin()
            assert fingerprint(cold.search(QUERIES[0])) == fingerprint(
                live.search(QUERIES[0])
            )
