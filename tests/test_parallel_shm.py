"""Tests for the shared-memory snapshot layer (`repro.parallel.shm`)."""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.errors import NodeNotFoundError
from repro.graph.compiled import ARRAY_FIELDS, CompiledGraph
from repro.parallel.shm import (
    SharedNameTable,
    SnapshotGraphView,
    StaleSnapshotError,
    _attach_segment,
    attach_snapshot,
    publish_graph,
    publish_snapshot,
)


@pytest.fixture()
def published(fig1_graph):
    shared = publish_graph(fig1_graph)
    yield fig1_graph, shared
    shared.unlink()  # idempotent


class TestRoundTrip:
    def test_arrays_byte_equal_and_read_only(self, published):
        graph, shared = published
        source = graph.compiled()
        with attach_snapshot(shared.header) as attached:
            rebuilt = attached.compiled
            assert rebuilt.version == source.version
            assert rebuilt.node_count == source.node_count
            assert rebuilt.label_count == source.label_count
            for name, dtype in ARRAY_FIELDS:
                original = getattr(source, name)
                view = getattr(rebuilt, name)
                assert view.dtype == dtype
                assert np.array_equal(original, view), name
                assert not view.flags.writeable
                with pytest.raises((ValueError, RuntimeError)):
                    view[0] = 0

    def test_name_tables_round_trip(self, published):
        graph, shared = published
        with attach_snapshot(shared.header) as attached:
            names = attached.node_names
            assert len(names) == graph.node_count
            assert list(names) == list(graph.node_names())
            table = attached.label_table
            live = graph._label_table()
            for label_id in range(shared.header.label_count):
                assert table.name(label_id) == live.name(label_id)

    def test_header_is_small_and_picklable(self, published):
        _, shared = published
        blob = pickle.dumps(shared.header)
        assert len(blob) < 4096
        assert pickle.loads(blob).segment == shared.segment

    def test_name_slicing_cuts_post_snapshot_growth(self, toy_graph):
        compiled = toy_graph.compiled()
        toy_graph.add_node("Added_After_Snapshot")
        shared = publish_snapshot(
            compiled,
            toy_graph._node_names_list(),
            [
                toy_graph._label_table().name(i)
                for i in range(compiled.label_count)
            ],
        )
        try:
            with attach_snapshot(shared.header) as attached:
                assert len(attached.node_names) == compiled.node_count
                assert "Added_After_Snapshot" not in list(attached.node_names)
        finally:
            shared.unlink()

    def test_publish_rejects_short_name_tables(self, toy_graph):
        compiled = toy_graph.compiled()
        with pytest.raises(ValueError, match="node names"):
            publish_snapshot(compiled, ["just-one"], [])


class TestLifecycle:
    def test_unlink_breaks_new_attaches(self, fig1_graph):
        shared = publish_graph(fig1_graph)
        attach_snapshot(shared.header).close()
        shared.unlink()
        with pytest.raises(StaleSnapshotError):
            attach_snapshot(shared.header)

    def test_unlink_is_idempotent(self, fig1_graph):
        shared = publish_graph(fig1_graph)
        shared.unlink()
        shared.unlink()

    def test_attached_mapping_survives_unlink(self, fig1_graph):
        # POSIX contract: the mapped data stays readable after unlink.
        shared = publish_graph(fig1_graph)
        attached = attach_snapshot(shared.header)
        expected = fig1_graph.compiled().targets.copy()
        shared.unlink()
        assert np.array_equal(attached.compiled.targets, expected)
        attached.close()

    def test_close_releases_segment_reference(self, published):
        _, shared = published
        attached = attach_snapshot(shared.header)
        attached.close()
        attached.close()  # idempotent
        assert attached._shm is None

    def test_attach_segment_maps_missing_to_stale(self):
        with pytest.raises(StaleSnapshotError):
            _attach_segment("repro-snap-does-not-exist")


class TestSharedNameTable:
    def test_lazy_decode_and_cache(self):
        offsets = np.array([0, 3, 3, 9], dtype=np.int64)
        blob = np.frombuffer("foobarbaz".encode()[:9], dtype=np.uint8).copy()
        table = SharedNameTable(offsets, blob)
        assert len(table) == 3
        assert table[0] == "foo"
        assert table[1] == ""
        assert table[2] == "barbaz"
        assert table[-1] == "barbaz"
        with pytest.raises(IndexError):
            table[3]

    def test_release_keeps_decoded_entries(self):
        offsets = np.array([0, 2], dtype=np.int64)
        blob = np.frombuffer(b"hi", dtype=np.uint8).copy()
        table = SharedNameTable(offsets, blob)
        assert table[0] == "hi"
        table.release()
        assert table[0] == "hi"  # served from the memo cache


class TestSnapshotGraphView:
    def test_reader_surface_matches_live_graph(self, published):
        graph, shared = published
        with attach_snapshot(shared.header) as attached:
            view = SnapshotGraphView(attached)
            assert view.node_count == graph.node_count
            assert view.edge_count == graph.edge_count
            assert view.version == graph.version
            assert view.node_name(2) == graph.node_name(2)
            assert view.node_id(graph.node_name(3)) == 3
            assert view.node_ids([0, 1]) == [0, 1]
            assert view.has_node(0) and not view.has_node(view.node_count)
            assert view.has_node(graph.node_name(1))
            assert not view.has_node("no-such-entity")
            assert "shared view" in view.summary()

    def test_node_resolution_errors(self, published):
        _, shared = published
        with attach_snapshot(shared.header) as attached:
            view = SnapshotGraphView(attached)
            with pytest.raises(NodeNotFoundError):
                view.node_id(-1)
            with pytest.raises(NodeNotFoundError):
                view.node_id("no-such-entity")
            with pytest.raises(TypeError):
                view.node_id(1.5)  # type: ignore[arg-type]

    def test_pipeline_parity_on_view(self, published):
        # The full pinned FindNC pipeline over the shared view must equal
        # the same pipeline over the live graph.
        graph, shared = published
        from repro.core.context import RandomWalkContext
        from repro.core.discrimination import MultinomialDiscriminator
        from repro.core.findnc import FindNC

        def run(g, snapshot):
            finder = FindNC(
                g,
                context_selector=RandomWalkContext(g, pin=True).warm(),
                discriminator=MultinomialDiscriminator(rng=7),
                context_size=3,
            )
            return finder.run((1, 2), snapshot=snapshot)

        with attach_snapshot(shared.header) as attached:
            view = SnapshotGraphView(attached)
            shared_result = run(view, view.compiled())
        live_result = run(graph, graph.compiled())
        assert shared_result.query == live_result.query
        assert shared_result.context.ranked_nodes == live_result.context.ranked_nodes
        assert [r.label for r in shared_result.results] == [
            r.label for r in live_result.results
        ]
        assert [r.score for r in shared_result.results] == [
            r.score for r in live_result.results
        ]


class TestFromArrays:
    def test_rejects_missing_and_mismatched_arrays(self, toy_graph):
        compiled = toy_graph.compiled()
        arrays = {k: v.copy() for k, v in compiled.arrays().items()}
        incomplete = dict(arrays)
        del incomplete["targets"]
        with pytest.raises(ValueError, match="missing"):
            CompiledGraph.from_arrays(
                version=1,
                node_count=compiled.node_count,
                label_count=compiled.label_count,
                arrays=incomplete,
            )
        wrong_dtype = dict(arrays)
        wrong_dtype["targets"] = wrong_dtype["targets"].astype(np.int32)
        with pytest.raises(ValueError, match="dtype"):
            CompiledGraph.from_arrays(
                version=1,
                node_count=compiled.node_count,
                label_count=compiled.label_count,
                arrays=wrong_dtype,
            )
        with pytest.raises(ValueError, match="length"):
            CompiledGraph.from_arrays(
                version=1,
                node_count=compiled.node_count + 1,
                label_count=compiled.label_count,
                arrays={k: v.copy() for k, v in arrays.items()},
            )

    def test_round_trips_the_compile_output(self, toy_graph):
        compiled = toy_graph.compiled()
        rebuilt = CompiledGraph.from_arrays(
            version=compiled.version,
            node_count=compiled.node_count,
            label_count=compiled.label_count,
            arrays={k: v.copy() for k, v in compiled.arrays().items()},
        )
        assert rebuilt.edge_count == compiled.edge_count
        assert np.array_equal(rebuilt.indptr, compiled.indptr)
        assert rebuilt.covers(range(compiled.node_count))


class TestSharedTransition:
    """PR 4: the frozen PPR transition CSR travels through the segment."""

    def test_transition_blocks_round_trip(self, fig1_graph):
        from repro.graph.matrix import transition_from_snapshot

        compiled = fig1_graph.compiled()
        expected = transition_from_snapshot(compiled)
        shared = publish_snapshot(
            compiled,
            fig1_graph._node_names_list(),
            [
                fig1_graph._label_table().name(i)
                for i in range(compiled.label_count)
            ],
            transition=expected,
        )
        try:
            assert shared.header.transition is not None
            attached = attach_snapshot(shared.header)
            try:
                stored = attached.transition()
                assert stored is not None
                assert stored.shape == expected.shape
                assert (stored != expected).nnz == 0
                assert attached.transition() is stored  # memoized
            finally:
                attached.close()
        finally:
            shared.unlink()

    def test_transition_absent_by_default(self, published):
        _, shared = published
        attached = attach_snapshot(shared.header)
        try:
            assert shared.header.transition is None
            assert attached.transition() is None
        finally:
            attached.close()

    def test_publish_rejects_mismatched_transition(self, fig1_graph):
        from scipy import sparse

        compiled = fig1_graph.compiled()
        wrong = sparse.csr_matrix((2, 2), dtype=np.float64)
        with pytest.raises(ValueError, match="transition matrix shape"):
            publish_snapshot(
                compiled,
                fig1_graph._node_names_list(),
                [
                    fig1_graph._label_table().name(i)
                    for i in range(compiled.label_count)
                ],
                transition=wrong,
            )

    def test_engine_publishes_transition_and_workers_adopt(self, fig1_graph):
        """Process-mode pins ship the CSR triple; a worker-side adopt
        reproduces the warm build exactly (pinned by result parity in
        tests/test_service_workers.py; here we check the plumbing)."""
        from repro.service.engine import NCEngine

        with NCEngine(fig1_graph, executor="process", max_workers=1) as engine:
            state = engine.pin()
            assert state.shared is not None
            assert state.shared.header.transition is not None
