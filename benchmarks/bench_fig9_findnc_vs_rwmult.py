"""Figure 9 — significance probabilities, FindNC vs RWMult (actors, |Q|=5).

Paper claims asserted:
* ``actedIn`` is "very rare in the [RandomWalk] context but common in the
  query" — flagged notable by RWMult (p = 0.0086 in the paper) yet deemed
  uninteresting by FindNC (p = 0.96);
* ``hasWonPrize`` likewise splits: common for actors (FindNC context) but
  not in the mixed RandomWalk context;
* ``created`` is notable under FindNC;
* ``owns`` sits at the edge of the significance threshold under FindNC
  (the paper surfaces it only at significance 0.1).
"""

from conftest import run_once

from repro.eval.experiments import significance_comparison


def test_fig9_findnc_vs_rwmult(benchmark, setting):
    table = run_once(benchmark, significance_comparison, setting)
    print()
    print(table.render())

    p = {label: (find_p, rw_p) for label, find_p, rw_p, _a in table.rows}

    acted_find, acted_rw = p["actedIn"]
    assert acted_rw <= 0.05 < acted_find, (
        f"actedIn: baseline false positive expected "
        f"(FindNC {acted_find:.4f}, RWMult {acted_rw:.4f})"
    )

    prize_find, prize_rw = p["hasWonPrize"]
    assert prize_rw <= 0.05 < prize_find, (
        f"hasWonPrize: baseline false positive expected "
        f"(FindNC {prize_find:.4f}, RWMult {prize_rw:.4f})"
    )

    created_find, _created_rw = p["created"]
    assert created_find <= 0.05, f"created must be notable (p={created_find:.4f})"

    owns_find, _owns_rw = p["owns"]
    assert 0.01 <= owns_find <= 0.12, (
        f"owns is the borderline case near the threshold (p={owns_find:.4f})"
    )
