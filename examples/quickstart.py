"""Quickstart: the paper's running example, end to end.

Part 1 — context discovery on the tiny Figure-1 graph: the query
{Angela_Merkel, Barack_Obama} expands into the context {Vladimir_Putin,
Matteo_Renzi, Francois_Hollande}, exactly as the figure shows.

Part 2 — the full pipeline on the synthetic YAGO graph with the complete
politicians query of Table 1: the notable characteristics include
``isLeaderOf`` (all six query members lead a country, most similar
politicians do not), ``hasChild`` (Angela Merkel has none) and ``studied``
(Physics among lawyers) — the facts the paper's introduction motivates.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import ContextRW, FindNC
from repro.datasets import (
    FIGURE1_QUERY,
    POLITICIANS_DOMAIN,
    figure1_graph,
    load_dataset,
)


def part1_context_on_figure1() -> None:
    graph = figure1_graph()
    print(f"[1] Context discovery on the Figure-1 graph ({graph.summary()})")
    selector = ContextRW(graph, rng=7)
    query = [graph.node_id(name) for name in FIGURE1_QUERY]
    context = selector.select(query, 3)
    print(f"    query:   {list(FIGURE1_QUERY)}")
    print(f"    context: {context.names(graph)}")
    print()


def part2_full_pipeline_on_yago() -> None:
    graph = load_dataset("yago", scale=1.0)
    print(f"[2] Full FindNC on synthetic YAGO ({graph.summary()})")
    finder = FindNC(graph, context_size=50, rng=11)
    result = finder.run(list(POLITICIANS_DOMAIN.entities))

    print(f"    query:       {list(POLITICIANS_DOMAIN.entities)}")
    print(f"    context (8 of {len(result.context)}): "
          f"{result.context.names(graph, 8)}")
    print(f"    evaluated {len(result.results)} candidate characteristics "
          f"in {result.elapsed_total:.2f}s\n")

    print("    Notable characteristics:")
    for notable in result.notable:
        print(f"      * {notable.explanation(graph)}")

    print("\n    Expected (not notable):")
    for item in result.results:
        if not item.notable:
            print(f"      - {item.label} (p = {item.min_p_value:.3f})")


def main() -> None:
    part1_context_on_figure1()
    part2_full_pipeline_on_yago()


if __name__ == "__main__":
    main()
