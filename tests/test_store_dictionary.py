"""Unit tests for repro.store.dictionary."""

import pytest

from repro.store.dictionary import TermDictionary
from repro.store.terms import IRI, Literal


class TestTermDictionary:
    def test_ids_are_dense_from_zero(self):
        d = TermDictionary()
        assert d.encode(IRI("a")) == 0
        assert d.encode(IRI("b")) == 1
        assert d.encode(Literal("c")) == 2

    def test_encode_is_idempotent(self):
        d = TermDictionary()
        first = d.encode(IRI("a"))
        assert d.encode(IRI("a")) == first
        assert len(d) == 1

    def test_decode_inverts_encode(self):
        d = TermDictionary()
        terms = [IRI("a"), Literal("b"), Literal("b", language="en")]
        ids = [d.encode(t) for t in terms]
        assert [d.decode(i) for i in ids] == terms

    def test_distinct_literals_get_distinct_ids(self):
        d = TermDictionary()
        assert d.encode(Literal("x")) != d.encode(Literal("x", language="en"))
        assert d.encode(Literal("x")) != d.encode(IRI("x"))

    def test_lookup_unknown_returns_none(self):
        d = TermDictionary()
        assert d.lookup(IRI("nope")) is None

    def test_decode_unknown_raises(self):
        d = TermDictionary()
        with pytest.raises(IndexError):
            d.decode(0)
        d.encode(IRI("a"))
        with pytest.raises(IndexError):
            d.decode(1)
        with pytest.raises(IndexError):
            d.decode(-1)

    def test_contains(self):
        d = TermDictionary()
        d.encode(IRI("a"))
        assert IRI("a") in d
        assert IRI("b") not in d

    def test_iteration_order_is_id_order(self):
        d = TermDictionary()
        terms = [IRI(name) for name in "cab"]
        for term in terms:
            d.encode(term)
        assert list(d) == terms

    def test_encode_many(self):
        d = TermDictionary()
        ids = d.encode_many([IRI("a"), IRI("b"), IRI("a")])
        assert ids == [0, 1, 0]

    def test_items(self):
        d = TermDictionary()
        d.encode(IRI("a"))
        d.encode(IRI("b"))
        assert dict(d.items()) == {IRI("a"): 0, IRI("b"): 1}
