"""Tests for the Zipf load harness: schedules, determinism, execution."""

import pytest

from repro.datasets.figure1 import figure1_graph
from repro.service.engine import NCEngine
from repro.service.loadgen import (
    LoadEvent,
    LoadProfile,
    build_schedule,
    engine_target,
    entity_ranking,
    run_load,
)

ENTITIES = [f"entity_{i}" for i in range(20)]


class TestProfileValidation:
    def test_defaults_are_valid(self):
        LoadProfile()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"mode": "burst"},
            {"rate": 0.0},
            {"duration_s": 0.0},
            {"requests": 0},
            {"concurrency": 0},
            {"zipf_s": 0.0},
            {"session_length": 0},
        ],
    )
    def test_bad_values_rejected(self, kwargs):
        with pytest.raises(ValueError):
            LoadProfile(**kwargs)


class TestBuildSchedule:
    def test_same_seed_same_schedule(self):
        profile = LoadProfile(mode="open", rate=100.0, duration_s=2.0, seed=3)
        first, first_skew = build_schedule(ENTITIES, profile)
        second, second_skew = build_schedule(ENTITIES, profile)
        assert first == second
        assert first_skew == second_skew

    def test_different_seed_different_schedule(self):
        base = LoadProfile(mode="open", rate=100.0, duration_s=2.0, seed=3)
        other = LoadProfile(mode="open", rate=100.0, duration_s=2.0, seed=4)
        assert build_schedule(ENTITIES, base) != build_schedule(ENTITIES, other)

    def test_open_loop_respects_duration_and_rate(self):
        profile = LoadProfile(mode="open", rate=200.0, duration_s=1.0, seed=0)
        schedule, _ = build_schedule(ENTITIES, profile)
        assert all(request.at_s < 1.0 for request in schedule)
        assert schedule == sorted(schedule, key=lambda r: r.at_s)
        # Poisson arrivals: expect rate*duration +- a generous band
        assert 100 <= len(schedule) <= 320

    def test_closed_loop_has_exact_count_and_no_arrival_times(self):
        profile = LoadProfile(mode="closed", requests=37, seed=0)
        schedule, _ = build_schedule(ENTITIES, profile)
        assert len(schedule) == 37
        assert all(request.at_s == 0.0 for request in schedule)

    def test_queries_are_entity_pairs_from_pool(self):
        profile = LoadProfile(mode="closed", requests=50, seed=1)
        schedule, _ = build_schedule(ENTITIES, profile)
        for request in schedule:
            assert len(request.query) == 2
            assert request.query[0] != request.query[1]
            assert set(request.query) <= set(ENTITIES)

    def test_zipf_skew_concentrates_head(self):
        flat = LoadProfile(mode="closed", requests=400, zipf_s=0.5, seed=2)
        steep = LoadProfile(mode="closed", requests=400, zipf_s=2.5, seed=2)
        _, flat_skew = build_schedule(ENTITIES, flat)
        _, steep_skew = build_schedule(ENTITIES, steep)
        assert steep_skew["head_10pct_share"] > flat_skew["head_10pct_share"]
        assert 0.0 < flat_skew["top_pair_share"] <= 1.0

    def test_sessions_group_consecutive_requests(self):
        profile = LoadProfile(mode="closed", requests=60, session_length=5, seed=0)
        schedule, skew = build_schedule(ENTITIES, profile)
        sessions = {request.session for request in schedule}
        assert skew["sessions"] == len(sessions)
        assert 1 <= len(sessions) < len(schedule)

    def test_needs_two_entities(self):
        with pytest.raises(ValueError):
            build_schedule(["only_one"], LoadProfile())


class TestRunLoad:
    @pytest.fixture(scope="class")
    def engine(self):
        graph = figure1_graph()
        with NCEngine(graph, context_size=3, max_workers=2, seed=5) as engine:
            engine.pin()
            yield engine

    def test_closed_loop_completes_all(self, engine):
        profile = LoadProfile(mode="closed", requests=24, concurrency=3, seed=0)
        entities = entity_ranking(engine.graph, limit=8)
        schedule, _ = build_schedule(entities, profile)
        report = run_load(engine_target(engine), schedule, profile)
        assert report.completed == 24
        assert report.errors == {}
        assert len(report.latencies_s) == 24
        assert report.quantile(0.5) > 0
        summary = report.summary()
        assert summary["latency_s"]["p99"] >= summary["latency_s"]["p50"]

    def test_open_loop_measures_from_scheduled_arrival(self, engine):
        profile = LoadProfile(mode="open", rate=60.0, duration_s=0.5, seed=1)
        entities = entity_ranking(engine.graph, limit=8)
        schedule, _ = build_schedule(entities, profile)
        report = run_load(engine_target(engine), schedule, profile)
        assert report.completed == len(schedule)
        assert report.achieved_rps > 0
        assert report.dispatch_lag_p99_s >= 0.0

    def test_errors_are_counted_not_raised(self):
        profile = LoadProfile(mode="closed", requests=5, concurrency=2, seed=0)
        schedule, _ = build_schedule(ENTITIES, profile)

        def broken(query):
            raise RuntimeError("boom")

        report = run_load(broken, schedule, profile)
        assert report.completed == 0
        assert report.errors == {"RuntimeError": 5}

    def test_events_fire_and_failures_recorded(self, engine):
        profile = LoadProfile(mode="closed", requests=8, concurrency=2, seed=0)
        entities = entity_ranking(engine.graph, limit=8)
        schedule, _ = build_schedule(entities, profile)
        fired = []
        events = (
            LoadEvent(at_s=0.0, name="mark", action=lambda: fired.append(1)),
            LoadEvent(
                at_s=0.0,
                name="boom",
                action=lambda: (_ for _ in ()).throw(RuntimeError("x")),
            ),
        )
        report = run_load(engine_target(engine), schedule, profile, events=events)
        assert fired == [1]
        assert "mark" in report.events_fired
        assert "boom" in report.event_errors


class TestEntityRanking:
    def test_limit_and_order(self):
        graph = figure1_graph()
        names = entity_ranking(graph, limit=5)
        assert len(names) == 5
        assert names == [graph.node_name(i) for i in range(5)]
