"""Dataset registry with memoized construction.

Experiments and benchmarks request graphs through :func:`load_dataset` so
that repeated runs within one process reuse the same built graph (the
generators are deterministic, so sharing is safe as long as callers do not
mutate the graph — experiment code never does).
"""

from __future__ import annotations

from collections.abc import Callable
from functools import lru_cache

from repro.datasets.figure1 import figure1_graph
from repro.datasets.linkedmdb import synthetic_linkedmdb
from repro.datasets.yago import synthetic_yago
from repro.graph.model import KnowledgeGraph

_BUILDERS: dict[str, Callable[..., KnowledgeGraph]] = {
    "yago": lambda scale, seed: synthetic_yago(scale=scale, seed=seed),
    "linkedmdb": lambda scale, seed: synthetic_linkedmdb(scale=scale, seed=seed),
    "figure1": lambda scale, seed: figure1_graph(),
}


def dataset_names() -> list[str]:
    """The registered dataset identifiers."""
    return sorted(_BUILDERS)


@lru_cache(maxsize=16)
def load_dataset(
    name: str, *, scale: float = 1.0, seed: int | None = None
) -> KnowledgeGraph:
    """Build (or fetch the memoized) dataset ``name``.

    ``seed`` defaults to each generator's own default so that
    ``load_dataset("yago")`` always names the same graph.
    """
    try:
        builder = _BUILDERS[name]
    except KeyError:
        raise KeyError(
            f"unknown dataset {name!r}; available: {', '.join(dataset_names())}"
        ) from None
    default_seed = {"yago": 7, "linkedmdb": 13, "figure1": 0}[name]
    return builder(scale, seed if seed is not None else default_seed)


def clear_dataset_cache() -> None:
    """Drop memoized graphs (tests use this to guarantee isolation)."""
    load_dataset.cache_clear()
