"""Unit tests for evaluation metrics."""

import pytest

from repro.eval.metrics import (
    best_f1,
    f1_at,
    f1_curve,
    f1_score,
    kendall_switches,
    mean,
    precision_at,
    recall_at,
)


class TestPrecisionRecall:
    def test_precision_at(self):
        assert precision_at(["a", "b", "c"], {"a", "c"}, 2) == pytest.approx(0.5)
        assert precision_at(["a", "b"], {"a"}, 1) == 1.0

    def test_precision_k_zero(self):
        assert precision_at(["a"], {"a"}, 0) == 0.0

    def test_precision_k_beyond_list(self):
        assert precision_at(["a"], {"a"}, 10) == 1.0

    def test_recall_at(self):
        assert recall_at(["a", "b"], {"a", "x", "y"}, 2) == pytest.approx(1 / 3)

    def test_recall_empty_relevant(self):
        assert recall_at(["a"], set(), 1) == 0.0

    def test_negative_k_rejected(self):
        with pytest.raises(ValueError):
            precision_at([], set(), -1)
        with pytest.raises(ValueError):
            recall_at([], set(), -1)


class TestF1:
    def test_harmonic_mean(self):
        assert f1_score(1.0, 0.5) == pytest.approx(2 / 3)

    def test_zero_components(self):
        assert f1_score(0.0, 0.0) == 0.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            f1_score(-0.1, 0.5)

    def test_f1_at(self):
        predicted = ["a", "b", "c", "d"]
        relevant = {"a", "b", "x", "y"}
        p, r = 0.5, 0.5
        assert f1_at(predicted, relevant, 4) == pytest.approx(
            2 * p * r / (p + r)
        )

    def test_f1_curve(self):
        curve = f1_curve(["a", "b"], {"a"}, [1, 2])
        assert curve[0] == (1, 1.0)
        assert curve[1][1] < 1.0

    def test_best_f1(self):
        predicted = ["a", "x", "b"]
        relevant = {"a", "b"}
        value, argmax = best_f1(predicted, relevant)
        assert argmax == 3  # both relevants found at cutoff 3
        assert value == pytest.approx(f1_at(predicted, relevant, 3))

    def test_best_f1_prefers_earlier_peak(self):
        predicted = ["a", "x", "y", "z"]
        relevant = {"a"}
        value, argmax = best_f1(predicted, relevant)
        assert argmax == 1
        assert value == 1.0

    def test_best_f1_empty_relevant(self):
        assert best_f1(["a"], set()) == (0.0, 0)

    def test_best_f1_max_k(self):
        predicted = ["x", "a"]
        value, argmax = best_f1(predicted, {"a"}, max_k=1)
        assert value == 0.0


class TestKendallSwitches:
    def test_identical(self):
        assert kendall_switches(["a", "b", "c"], ["a", "b", "c"]) == 0

    def test_single_swap(self):
        assert kendall_switches(["a", "b", "c"], ["b", "a", "c"]) == 1

    def test_full_reversal(self):
        n = 5
        items = list("abcde")
        assert kendall_switches(items, items[::-1]) == n * (n - 1) // 2

    def test_symmetry(self):
        a = ["a", "b", "c", "d"]
        b = ["c", "a", "d", "b"]
        assert kendall_switches(a, b) == kendall_switches(b, a)

    def test_different_items_rejected(self):
        with pytest.raises(ValueError):
            kendall_switches(["a"], ["b"])

    def test_different_lengths_rejected(self):
        with pytest.raises(ValueError):
            kendall_switches(["a", "b"], ["a"])

    def test_duplicates_rejected(self):
        with pytest.raises(ValueError):
            kendall_switches(["a", "a"], ["a", "a"])


class TestMean:
    def test_mean(self):
        assert mean([1, 2, 3]) == 2.0

    def test_empty(self):
        assert mean([]) == 0.0
