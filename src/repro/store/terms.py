"""RDF-like term model: IRIs and literals.

The knowledge graphs of the paper (YAGO, LinkedMDB) are RDF datasets; their
nodes are IRIs (entities) or literals (attribute values such as dates). The
paper's Definition 1 folds attributes into the graph by treating every
attribute value as a node, so both kinds become graph nodes downstream.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from functools import total_ordering
from typing import Union

from repro.errors import TermError

_IRI_FORBIDDEN = re.compile(r"[<>\"{}|^`\\\s]")


@total_ordering
@dataclass(frozen=True, slots=True)
class IRI:
    """An IRI reference (e.g. ``yago:Angela_Merkel``).

    The store does not enforce full RFC 3987 syntax — YAGO identifiers are
    notoriously liberal — but rejects whitespace and the bracket characters
    used by the N-Triples syntax so serialization round-trips.
    """

    value: str

    def __post_init__(self) -> None:
        if not self.value:
            raise TermError("IRI must not be empty")
        if _IRI_FORBIDDEN.search(self.value):
            raise TermError(f"IRI contains forbidden character: {self.value!r}")

    @property
    def local_name(self) -> str:
        """The fragment after the last ``/``, ``#`` or ``:`` separator."""
        return re.split(r"[/#:]", self.value)[-1]

    def n3(self) -> str:
        """N-Triples serialization."""
        return f"<{self.value}>"

    def __str__(self) -> str:
        return self.value

    def __lt__(self, other: object) -> bool:
        if isinstance(other, IRI):
            return self.value < other.value
        if isinstance(other, Literal):
            return True  # IRIs sort before literals
        return NotImplemented


_ESCAPES = {
    "\\": "\\\\",
    '"': '\\"',
    "\n": "\\n",
    "\r": "\\r",
    "\t": "\\t",
}
_UNESCAPES = {v: k for k, v in _ESCAPES.items()}


def _escape_literal(text: str) -> str:
    out = []
    for ch in text:
        out.append(_ESCAPES.get(ch, ch))
    return "".join(out)


def unescape_literal(text: str) -> str:
    """Reverse :func:`_escape_literal` (used by the N-Triples parser)."""
    out: list[str] = []
    i = 0
    while i < len(text):
        if text[i] == "\\" and i + 1 < len(text):
            pair = text[i : i + 2]
            if pair in _UNESCAPES:
                out.append(_UNESCAPES[pair])
                i += 2
                continue
            if pair == "\\u" and i + 6 <= len(text):
                out.append(chr(int(text[i + 2 : i + 6], 16)))
                i += 6
                continue
            if pair == "\\U" and i + 10 <= len(text):
                out.append(chr(int(text[i + 2 : i + 10], 16)))
                i += 10
                continue
        out.append(text[i])
        i += 1
    return "".join(out)


@total_ordering
@dataclass(frozen=True, slots=True)
class Literal:
    """A literal value with an optional datatype IRI or language tag."""

    value: str
    datatype: str | None = None
    language: str | None = None

    def __post_init__(self) -> None:
        if self.datatype is not None and self.language is not None:
            raise TermError("a literal cannot carry both datatype and language")

    def n3(self) -> str:
        body = f'"{_escape_literal(self.value)}"'
        if self.language:
            return f"{body}@{self.language}"
        if self.datatype:
            return f"{body}^^<{self.datatype}>"
        return body

    def __str__(self) -> str:
        return self.value

    def __lt__(self, other: object) -> bool:
        if isinstance(other, Literal):
            return (self.value, self.datatype or "", self.language or "") < (
                other.value,
                other.datatype or "",
                other.language or "",
            )
        if isinstance(other, IRI):
            return False  # literals sort after IRIs
        return NotImplemented


#: A term in subject/object position.
Term = Union[IRI, Literal]


def coerce_term(value: "Term | str") -> Term:
    """Coerce a bare string into an :class:`IRI` (convenience for builders)."""
    if isinstance(value, (IRI, Literal)):
        return value
    if isinstance(value, str):
        return IRI(value)
    raise TermError(f"cannot interpret {type(value).__name__} as a term")
