"""Traversal helpers: BFS distances, ego networks, label-constrained steps."""

from __future__ import annotations

from collections import deque
from collections.abc import Iterable

from repro.graph.model import KnowledgeGraph, NodeRef


def bfs_distances(
    graph: KnowledgeGraph,
    sources: Iterable[NodeRef],
    *,
    max_depth: int | None = None,
    direction: str = "out",
) -> dict[int, int]:
    """Hop distances from ``sources`` to every reachable node.

    With the inverse closure in place, ``direction='out'`` already explores
    the graph as if it were undirected (reverse edges are real edges).
    """
    source_ids = [graph.node_id(s) for s in sources]
    distances: dict[int, int] = {}
    queue: deque[tuple[int, int]] = deque()
    for source in source_ids:
        if source not in distances:
            distances[source] = 0
            queue.append((source, 0))
    while queue:
        node, depth = queue.popleft()
        if max_depth is not None and depth >= max_depth:
            continue
        for neighbor in graph.neighbors(node, direction=direction):
            if neighbor not in distances:
                distances[neighbor] = depth + 1
                queue.append((neighbor, depth + 1))
    return distances


def ego_nodes(
    graph: KnowledgeGraph, center: NodeRef, radius: int = 1
) -> set[int]:
    """Nodes within ``radius`` hops of ``center`` (including it)."""
    return set(bfs_distances(graph, [center], max_depth=radius))


def follow_label(
    graph: KnowledgeGraph, nodes: Iterable[NodeRef], label: str
) -> set[int]:
    """One label-constrained expansion step: targets of ``label`` edges."""
    out: set[int] = set()
    for node in nodes:
        out.update(graph.neighbors(node, label))
    return out


def follow_label_counted(
    graph: KnowledgeGraph, node_counts: dict[int, int], label: str
) -> dict[int, int]:
    """Path-counting expansion step.

    Given ``{node: number of partial paths ending there}``, push the counts
    across every ``label`` edge. This is the work-horse of metapath-
    constrained path counting (the ``|{n ~m~> n'}|`` terms of Section 3.1).
    """
    out: dict[int, int] = {}
    for node, count in node_counts.items():
        for target in graph.neighbors(node, label):
            out[target] = out.get(target, 0) + count
    return out


def nodes_with_label(graph: KnowledgeGraph, label: str) -> set[int]:
    """All nodes having at least one out-edge labelled ``label``."""
    out: set[int] = set()
    for edge in graph.edges(label):
        out.add(edge.source)
    return out


def to_networkx(graph: KnowledgeGraph):
    """Export to a :class:`networkx.MultiDiGraph` (names as nodes).

    Handy for visualization and for cross-checking invariants in tests.
    """
    import networkx as nx

    nx_graph = nx.MultiDiGraph(name=graph.name)
    for node in graph.nodes():
        nx_graph.add_node(graph.node_name(node))
    for edge in graph.edges():
        nx_graph.add_edge(
            graph.node_name(edge.source),
            graph.node_name(edge.target),
            label=edge.label,
        )
    return nx_graph
