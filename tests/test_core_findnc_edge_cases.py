"""Edge-case coverage for the FindNC pipeline."""

import pytest

from repro.core.context import ContextResult
from repro.core.findnc import FindNC
from repro.errors import EntityResolutionError, QueryError
from repro.graph.builder import GraphBuilder
from repro.graph.model import KnowledgeGraph


class TestDegenerateGraphs:
    def test_isolated_query_node(self):
        graph = (
            GraphBuilder().node("hermit").fact("a", "r", "b").typed("a", "t").build()
        )
        finder = FindNC(graph, context_size=3, rng=1)
        result = finder.run(["hermit"])
        # An isolated node has no incident labels and reaches nothing:
        # empty context, no candidates, no notables — but no crash.
        assert result.results == []
        assert result.notable == []

    def test_two_node_graph(self):
        graph = GraphBuilder().fact("a", "r", "b").build()
        finder = FindNC(graph, context_size=2, rng=1)
        result = finder.run(["a"])
        assert isinstance(result.context, ContextResult)

    def test_empty_context_makes_everything_degenerate(self):
        graph = (
            GraphBuilder()
            .fact("a", "r", "b")
            .node("far_away")
            .build()
        )
        finder = FindNC(graph, context_size=5, rng=1)
        result = finder.run(["a"])
        # Whatever the verdicts, scores stay in range.
        for item in result.results:
            assert 0.0 <= item.score <= 1.0


class TestQueryHandling:
    @pytest.fixture()
    def graph(self):
        builder = GraphBuilder()
        for i in range(5):
            builder.typed(f"node{i}", "thing")
            builder.fact(f"node{i}", "linksTo", f"node{(i + 1) % 5}")
        return builder.build()

    def test_unknown_entity_raises_resolution_error(self, graph):
        finder = FindNC(graph, context_size=2, rng=1)
        with pytest.raises(EntityResolutionError):
            finder.run(["does_not_exist"])

    def test_empty_query_raises(self, graph):
        finder = FindNC(graph, context_size=2, rng=1)
        with pytest.raises(QueryError):
            finder.run([])

    def test_whole_population_query_rejected_by_miner(self, graph):
        # 11-node query violates the <= 10 rule from Section 2.
        big_graph = KnowledgeGraph()
        for i in range(12):
            big_graph.add_edge(f"n{i}", "r", f"n{(i + 1) % 12}")
        finder = FindNC(big_graph, context_size=2, rng=1)
        with pytest.raises(QueryError):
            finder.run([f"n{i}" for i in range(11)])

    def test_context_smaller_than_requested(self, graph):
        # Only 4 non-query nodes exist; asking for 50 returns what exists.
        finder = FindNC(graph, context_size=50, rng=1)
        result = finder.run(["node0"])
        assert len(result.context) <= graph.node_count - 1


class TestNoneBucketToggle:
    def test_none_bucket_disabled_changes_distributions(self):
        builder = GraphBuilder()
        for i in range(6):
            builder.typed(f"p{i}", "person")
            if i % 2 == 0:
                builder.fact(f"p{i}", "owns", f"thing{i}")
        graph = builder.build()
        with_bucket = FindNC(graph, context_size=3, none_bucket=True, rng=1)
        without = FindNC(graph, context_size=3, none_bucket=False, rng=1)
        a = with_bucket.run(["p0"])
        b = without.run(["p0"])
        if a.results and b.results:
            dist_a = a.results[0].distributions
            dist_b = b.results[0].distributions
            assert dist_a is not None and dist_b is not None
