"""E-commerce scenario from the paper's introduction: comparing cameras.

"Imagine a user compares two cameras and wants to know what are the
special features of these two with respect to all the others." The method
is domain independent — this script builds a small product knowledge graph
from scratch with :class:`GraphBuilder` and runs the identical pipeline.

The two query cameras are the only ones with weather sealing and in-body
stabilisation is missing from one of them — both facts surface as notable,
while shared commodity features (SD storage) do not.

Run:  python examples/product_catalog.py
"""

from __future__ import annotations

import random

from repro import FindNC, GraphBuilder

BRANDS = ("Nikora", "Canox", "Sonitar", "Pentalux", "Fujitar")
SENSORS = ("full_frame", "aps_c", "micro_four_thirds")
MOUNTS = ("E_mount", "F_mount", "RF_mount", "X_mount")


def build_catalog(seed: int = 21):
    rng = random.Random(seed)
    builder = GraphBuilder("camera-catalog")
    builder.subclass("camera", "product")

    # The two cameras the user compares: both weather sealed (rare),
    # one lacks stabilisation (common elsewhere).
    builder.typed("Alpha_Pro_X", "camera")
    builder.facts([
        ("Alpha_Pro_X", "hasBrand", "Sonitar"),
        ("Alpha_Pro_X", "hasSensor", "full_frame"),
        ("Alpha_Pro_X", "hasMount", "E_mount"),
        ("Alpha_Pro_X", "hasFeature", "weather_sealing"),
        ("Alpha_Pro_X", "hasFeature", "stabilisation"),
        ("Alpha_Pro_X", "hasStorage", "sd_card"),
    ])
    builder.typed("Trek_Master_II", "camera")
    builder.facts([
        ("Trek_Master_II", "hasBrand", "Pentalux"),
        ("Trek_Master_II", "hasSensor", "aps_c"),
        ("Trek_Master_II", "hasMount", "X_mount"),
        ("Trek_Master_II", "hasFeature", "weather_sealing"),
        ("Trek_Master_II", "hasStorage", "sd_card"),
    ])

    # 60 background cameras: no weather sealing, ~85% stabilised.
    for index in range(60):
        name = f"{rng.choice(BRANDS)}_Model_{index:02d}"
        builder.typed(name, "camera")
        builder.fact(name, "hasBrand", rng.choice(BRANDS))
        builder.fact(name, "hasSensor", rng.choice(SENSORS))
        builder.fact(name, "hasMount", rng.choice(MOUNTS))
        if rng.random() < 0.85:
            builder.fact(name, "hasFeature", "stabilisation")
        if rng.random() < 0.30:
            builder.fact(name, "hasFeature", "wifi")
        builder.fact(name, "hasStorage", "sd_card")
    return builder.build()


def main() -> None:
    graph = build_catalog()
    print(f"Catalog: {graph.summary()}\n")

    finder = FindNC(graph, context_size=30, rng=3)
    result = finder.run(["Alpha_Pro_X", "Trek_Master_II"])

    print(f"Context sample: {result.context.names(graph, 6)}\n")
    print("Characteristic verdicts:")
    for item in result.results:
        verdict = "NOTABLE" if item.notable else "expected"
        print(f"  {item.label:<12} p={item.min_p_value:6.4f} -> {verdict}")

    print("\nWhat makes these two cameras special:")
    for notable in result.notable:
        print(f"  * {notable.explanation(graph)}")


if __name__ == "__main__":
    main()
