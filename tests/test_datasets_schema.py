"""Unit tests for the synthetic-graph schema."""

from repro.datasets import schema as s


class TestRelations:
    def test_relations_unique(self):
        assert len(s.YAGO_RELATIONS) == len(set(s.YAGO_RELATIONS))

    def test_relation_count_comparable_to_yago(self):
        # YAGO 2.5 has 38 relations; the synthetic fragment stays in a
        # realistic band (two dozen forward labels).
        assert 20 <= len(s.YAGO_RELATIONS) <= 40

    def test_paper_relations_present(self):
        for label in ("created", "hasWonPrize", "actedIn", "owns", "influences",
                      "hasChild", "studied", "isLeaderOf"):
            assert label in s.YAGO_RELATIONS, label


class TestTypeHierarchy:
    def test_professions_under_person(self):
        for profession in s.PROFESSIONS:
            assert s.TYPE_HIERARCHY[profession] == s.PERSON

    def test_hierarchy_is_a_forest_rooted_at_entity(self):
        for child, parent in s.TYPE_HIERARCHY.items():
            seen = {child}
            current = parent
            while current in s.TYPE_HIERARCHY:
                assert current not in seen, f"cycle through {current}"
                seen.add(current)
                current = s.TYPE_HIERARCHY[current]
            assert current == s.ENTITY


class TestProfiles:
    def test_every_profession_has_profile(self):
        assert set(s.PROFESSION_PROFILES) == set(s.PROFESSIONS)

    def test_shares_sum_below_one(self):
        total = sum(p.share for p in s.PROFESSION_PROFILES.values())
        assert 0.8 <= total <= 1.05

    def test_probabilities_in_range(self):
        for profile in s.PROFESSION_PROFILES.values():
            for rate in (
                profile.female_rate,
                profile.married_rate,
                profile.childless_rate,
                profile.studied_rate,
                profile.degree_rate,
                profile.prize_rate,
            ):
                assert 0.0 <= rate <= 1.0

    def test_study_field_weights_positive(self):
        for profile in s.PROFESSION_PROFILES.values():
            assert profile.study_fields
            assert all(w > 0 for _f, w in profile.study_fields)

    def test_figure7_created_rate_band(self):
        # Figure 7's None bucket needs a large childless... rather,
        # company-less share among actors.
        actor = s.PROFESSION_PROFILES[s.ACTOR]
        assert 0.3 <= actor.created_company_rate <= 0.6

    def test_politicians_rarely_childless(self):
        politician = s.PROFESSION_PROFILES[s.POLITICIAN]
        assert politician.childless_rate <= 0.05

    def test_owner_rate_small(self):
        actor = s.PROFESSION_PROFILES[s.ACTOR]
        assert actor.owns_company_rate < actor.created_company_rate
