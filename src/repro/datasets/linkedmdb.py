"""Synthetic LinkedMDB — the movie-domain knowledge graph of Table 2.

LinkedMDB (739K nodes / 1.6M edges, 18 types) is film-centric: statements
hang off *film* resources (``film -> actor``, ``film -> director``, ...).
This generator reproduces that orientation and the domain specificity the
paper exploits ("Unsurprisingly, ContextRW performs better in LinkedMDB due
to the specificity of the dataset"): every entity lives in the movie world,
so metapaths mined for actor queries are purer than in the mixed YAGO.

The Table-1 actor and movie-contributor entities are embedded with their
seed filmographies so the same queries run on both datasets.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.datasets import names as pools
from repro.datasets.seeds import SEED_PEOPLE
from repro.graph.builder import GraphBuilder
from repro.graph.model import KnowledgeGraph
from repro.util.rng import derive_rng, ensure_rng

# LinkedMDB-flavoured vocabulary (film-subject orientation).
FILM_ACTOR = "actor"
FILM_DIRECTOR = "director"
FILM_PRODUCER = "producer"
FILM_WRITER = "writer"
FILM_EDITOR = "editor"
FILM_MUSIC = "music_contributor"
FILM_GENRE = "genre"
FILM_RELEASE = "initial_release_date"
FILM_COUNTRY = "country"
FILM_SEQUEL = "sequel"

FILM_TYPE = "film"
PERSON_TYPES = {
    FILM_ACTOR: "film_actor",
    FILM_DIRECTOR: "film_director",
    FILM_PRODUCER: "film_producer",
    FILM_WRITER: "film_writer",
    FILM_EDITOR: "film_editor",
    FILM_MUSIC: "film_music_contributor",
}


@dataclass(frozen=True)
class LinkedMdbConfig:
    """Size knobs (scaled by ``scale``)."""

    scale: float = 1.0
    films: int = 220
    actors: int = 260
    directors: int = 60
    producers: int = 50
    writers: int = 50
    editors: int = 35
    music_contributors: int = 35
    seed: int = 13

    def scaled(self, base: int) -> int:
        return max(1, int(base * self.scale))


class SyntheticLinkedMdb:
    """Builder for the synthetic LinkedMDB graph."""

    #: Roles with (relation, person type, films-per-person range).
    _ROLES = (
        (FILM_ACTOR, "actors", (2, 10)),
        (FILM_DIRECTOR, "directors", (1, 5)),
        (FILM_PRODUCER, "producers", (1, 6)),
        (FILM_WRITER, "writers", (1, 4)),
        (FILM_EDITOR, "editors", (1, 6)),
        (FILM_MUSIC, "music_contributors", (1, 7)),
    )

    def __init__(self, *, scale: float = 1.0, seed: int = 13) -> None:
        if scale <= 0:
            raise ValueError(f"scale must be positive, got {scale}")
        self.config = LinkedMdbConfig(scale=scale, seed=seed)
        self._rng = ensure_rng(seed)

    def build(self) -> KnowledgeGraph:
        builder = GraphBuilder(f"synthetic-linkedmdb(scale={self.config.scale})")
        rng = self._rng

        films = self._build_films(builder, derive_rng(rng, "films"))
        person_pool = pools.PersonNamePool(derive_rng(rng, "people"))
        for person in SEED_PEOPLE:
            person_pool.reserve(person.name)

        cast_rng = derive_rng(rng, "cast")
        for relation, config_field, films_range in self._ROLES:
            count = self.config.scaled(getattr(self.config, config_field))
            for _ in range(count):
                name = person_pool.draw()
                self._emit_person(builder, cast_rng, name, relation, films, films_range)

        self._apply_seed_people(builder, derive_rng(rng, "seeds"), films)
        return builder.build()

    def _build_films(self, builder: GraphBuilder, rng) -> list[str]:
        from repro.datasets.seeds import SEED_MOVIES

        films: list[str] = list(SEED_MOVIES)
        pool = pools.NamePool(
            tuple(
                f"{head}_{tail}"
                for head in pools.MOVIE_TITLE_HEADS
                for tail in pools.MOVIE_TITLE_TAILS
            ),
            rng,
        )
        for name in films:
            pool.reserve(name)
        while len(films) < self.config.scaled(self.config.films) + len(SEED_MOVIES):
            films.append(pool.draw())
        years = [str(year) for year in range(1950, 2021)]
        for film in films:
            builder.typed(film, FILM_TYPE)
            builder.fact(film, FILM_GENRE, rng.choice(pools.MOVIE_GENRES))
            builder.fact(film, FILM_RELEASE, rng.choice(years))
            builder.fact(film, FILM_COUNTRY, rng.choice(pools.COUNTRIES))
            if rng.random() < 0.08 and len(films) > 1:
                builder.fact(film, FILM_SEQUEL, rng.choice(films[: len(films) - 1]))
        return films

    def _pick_film(self, rng, films: list[str]) -> str:
        index = int(len(films) * rng.random() ** 2)  # hub skew toward seeds
        return films[min(index, len(films) - 1)]

    def _emit_person(
        self,
        builder: GraphBuilder,
        rng,
        name: str,
        relation: str,
        films: list[str],
        films_range: tuple[int, int],
    ) -> None:
        builder.typed(name, PERSON_TYPES[relation])
        low, high = films_range
        for _ in range(rng.randint(low, high)):
            # Film-subject orientation: the film points at the contributor.
            builder.fact(self._pick_film(rng, films), relation, name)

    def _ensure_film(
        self, builder: GraphBuilder, rng, film: str, known_films: set[str]
    ) -> None:
        """Type a seed-only film and give it the standard metadata."""
        if film in known_films:
            return
        builder.typed(film, FILM_TYPE)
        builder.fact(film, FILM_GENRE, rng.choice(pools.MOVIE_GENRES))
        builder.fact(film, FILM_RELEASE, str(rng.randint(1950, 2020)))
        builder.fact(film, FILM_COUNTRY, rng.choice(pools.COUNTRIES))
        known_films.add(film)

    def _apply_seed_people(self, builder: GraphBuilder, rng, films: list[str]) -> None:
        """Embed the Table-1 actor / movie-contributor seeds."""
        role_of_profession = {
            "actor": FILM_ACTOR,
            "film_director": FILM_DIRECTOR,
            "musician": FILM_MUSIC,
        }
        known_films = set(films)
        for person in SEED_PEOPLE:
            role = role_of_profession.get(person.profession)
            if role is None:
                continue  # politicians / writers are absent from LinkedMDB
            builder.typed(person.name, PERSON_TYPES[role])
            credited = set()
            for film in person.acted_in:
                self._ensure_film(builder, rng, film, known_films)
                builder.fact(film, FILM_ACTOR, person.name)
                credited.add(film)
            for film in person.directed:
                self._ensure_film(builder, rng, film, known_films)
                builder.fact(film, FILM_DIRECTOR, person.name)
                credited.add(film)
            for film in person.produced:
                self._ensure_film(builder, rng, film, known_films)
                builder.fact(film, FILM_PRODUCER, person.name)
                credited.add(film)
            for film in person.wrote_music_for:
                self._ensure_film(builder, rng, film, known_films)
                builder.fact(film, FILM_MUSIC, person.name)
                credited.add(film)
            # Give sparse seeds a couple of extra credits so they are as
            # connected as their synthetic peers (LinkedMDB is denser than
            # YAGO for film people).
            while len(credited) < 3:
                film = self._pick_film(rng, films)
                if film in credited:
                    continue
                builder.fact(film, role, person.name)
                credited.add(film)


def synthetic_linkedmdb(*, scale: float = 1.0, seed: int = 13) -> KnowledgeGraph:
    """Build a synthetic LinkedMDB graph (see :class:`SyntheticLinkedMdb`)."""
    return SyntheticLinkedMdb(scale=scale, seed=seed).build()
