"""Evaluation: metrics, experiment runners, bootstrap CIs, reporting."""

from repro.eval.bootstrap import bootstrap_quantile_ci, quantile, quantile_report
from repro.eval.metrics import (
    best_f1,
    f1_at,
    f1_curve,
    f1_score,
    kendall_switches,
    precision_at,
    recall_at,
)
from repro.eval.experiments import (
    ExperimentSetting,
    authors_testcase,
    context_size_sweep,
    dataset_comparison,
    distribution_figure,
    domains_table,
    metrics_comparison,
    path_count_sweep,
    query_size_sweep,
    significance_comparison,
    time_vs_path_length,
    time_vs_query_size,
)

__all__ = [
    "ExperimentSetting",
    "authors_testcase",
    "best_f1",
    "bootstrap_quantile_ci",
    "context_size_sweep",
    "dataset_comparison",
    "distribution_figure",
    "domains_table",
    "f1_at",
    "f1_curve",
    "f1_score",
    "kendall_switches",
    "metrics_comparison",
    "path_count_sweep",
    "precision_at",
    "quantile",
    "quantile_report",
    "query_size_sweep",
    "recall_at",
    "significance_comparison",
    "time_vs_path_length",
    "time_vs_query_size",
]
