"""Property-based tests over the full pipeline on random small graphs.

Invariants that must hold for *any* knowledge graph, not just the
generators': p-values live in [0, 1], contexts never contain query nodes,
scores are non-negative, results are deterministic under a fixed seed.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.context import ContextRW, RandomWalkContext
from repro.core.discrimination import MultinomialDiscriminator
from repro.core.distributions import build_distributions
from repro.core.findnc import FindNC
from repro.graph.model import KnowledgeGraph

people = [f"p{i}" for i in range(8)]
values = [f"v{i}" for i in range(4)]
labels = ["likes", "owns", "knows"]


@st.composite
def small_graphs(draw):
    """A random typed graph with at least two connected person nodes."""
    graph = KnowledgeGraph()
    for person in people:
        graph.add_edge(person, "type", "person")
    n_facts = draw(st.integers(3, 25))
    for _ in range(n_facts):
        subject = draw(st.sampled_from(people))
        label = draw(st.sampled_from(labels))
        obj = draw(st.sampled_from(people + values))
        if subject != obj:
            graph.add_edge(subject, label, obj)
    query_size = draw(st.integers(1, 3))
    query = [graph.node_id(p) for p in people[:query_size]]
    return graph, query


@given(small_graphs())
@settings(max_examples=25, deadline=None)
def test_contexts_exclude_query_and_scores_positive(case):
    graph, query = case
    for selector in (
        ContextRW(graph, rng=3, samples=600, min_samples=600),
        RandomWalkContext(graph),
    ):
        result = selector.select(query, 5)
        assert not set(result.nodes) & set(query)
        assert all(score > 0 for score in result.scores.values())
        assert len(result) <= 5


@given(small_graphs())
@settings(max_examples=25, deadline=None)
def test_findnc_p_values_and_scores_bounded(case):
    graph, query = case
    finder = FindNC(graph, context_size=4, rng=9)
    result = finder.run(query)
    for item in result.results:
        assert 0.0 <= item.score <= 1.0
        if item.inst_p_value is not None:
            assert 0.0 <= item.inst_p_value <= 1.0
        if item.card_p_value is not None:
            assert 0.0 <= item.card_p_value <= 1.0
    assert [n.label for n in result.notable] == [
        r.label for r in result.results if r.notable
    ]


@given(small_graphs())
@settings(max_examples=15, deadline=None)
def test_findnc_deterministic_per_seed(case):
    graph, query = case
    a = FindNC(graph, context_size=4, rng=42).run(query)
    b = FindNC(graph, context_size=4, rng=42).run(query)
    assert a.context.ranked_nodes == b.context.ranked_nodes
    assert [(r.label, r.score) for r in a.results] == [
        (r.label, r.score) for r in b.results
    ]


@given(small_graphs())
@settings(max_examples=20, deadline=None)
def test_distributions_consistent_for_every_label(case):
    graph, query = case
    context = [n for n in graph.nodes() if n not in query][:4]
    for label in graph.incident_labels(query):
        dists = build_distributions(graph, query, context, label)
        # Cardinality histograms partition the populations.
        assert dists.card_query.sum() == len(query)
        assert dists.card_context.sum() == len(context)
        # Aligned supports.
        assert len(dists.inst_query) == len(dists.inst_context)
        assert len(dists.card_query) == len(dists.card_context)
        # With the None bucket, instance counts cover every member too.
        assert dists.inst_query.sum() >= len(query) or dists.inst_query.sum() == 0


@given(small_graphs())
@settings(max_examples=15, deadline=None)
def test_discriminator_handles_empty_context(case):
    graph, query = case
    for label in list(graph.incident_labels(query))[:3]:
        dists = build_distributions(graph, query, [], label)
        result = MultinomialDiscriminator(rng=1).score(dists)
        # Degenerate context: the convention is maximal significance, never
        # a crash or an out-of-range value.
        assert 0.0 <= result.score <= 1.0
