"""Unit tests for the Equation 1/2 matrices."""

import pytest

from repro.graph.builder import GraphBuilder
from repro.graph.matrix import (
    dangling_nodes,
    personalization_vector,
    transition_matrix,
    weighted_adjacency,
)


@pytest.fixture()
def graph():
    # a -r-> b, a -s-> c  (plus inverse closure)
    return GraphBuilder().fact("a", "r", "b").fact("a", "s", "c").build()


class TestWeightedAdjacency:
    def test_shape(self, graph):
        a = weighted_adjacency(graph)
        assert a.shape == (graph.node_count, graph.node_count)

    def test_entries_follow_equation1(self, graph):
        a = weighted_adjacency(graph).toarray()
        i, j = graph.node_id("a"), graph.node_id("b")
        expected = 1.0 - graph.label_frequency("r")
        assert a[i, j] == pytest.approx(expected)

    def test_zero_where_no_edge(self, graph):
        a = weighted_adjacency(graph).toarray()
        b, c = graph.node_id("b"), graph.node_id("c")
        assert a[b, c] == 0.0

    def test_parallel_edges_sum(self):
        graph = (
            GraphBuilder(add_inverse=False)
            .fact("a", "r", "b")
            .fact("a", "s", "b")
            .build()
        )
        a = weighted_adjacency(graph).toarray()
        i, j = graph.node_id("a"), graph.node_id("b")
        expected = (1 - graph.label_frequency("r")) + (1 - graph.label_frequency("s"))
        assert a[i, j] == pytest.approx(expected)

    def test_non_negative(self, graph):
        a = weighted_adjacency(graph)
        assert (a.data >= 0).all()


class TestTransitionMatrix:
    def test_columns_stochastic_for_non_dangling(self, graph):
        t = transition_matrix(graph).toarray()
        sums = t.sum(axis=0)
        for node in graph.nodes():
            if graph.out_degree(node) > 0:
                assert sums[node] == pytest.approx(1.0)

    def test_dangling_columns_zero(self):
        graph = GraphBuilder(add_inverse=False).fact("a", "r", "b").build()
        t = transition_matrix(graph).toarray()
        b = graph.node_id("b")
        assert t[:, b].sum() == 0.0

    def test_transition_respects_weights(self):
        graph = (
            GraphBuilder(add_inverse=False)
            .fact("a", "common", "b")
            .fact("c", "common", "d")
            .fact("c", "common", "e")
            .fact("a", "rare", "e")
            .build()
        )
        t = transition_matrix(graph).toarray()
        a = graph.node_id("a")
        b = graph.node_id("b")
        e = graph.node_id("e")
        # 'rare' is more informative: the walker prefers it from 'a'.
        assert t[e, a] > t[b, a]


class TestHelpers:
    def test_dangling_mask(self):
        graph = GraphBuilder(add_inverse=False).fact("a", "r", "b").build()
        mask = dangling_nodes(graph)
        assert not mask[graph.node_id("a")]
        assert mask[graph.node_id("b")]

    def test_personalization_vector(self, graph):
        nodes = [graph.node_id("a"), graph.node_id("b")]
        v = personalization_vector(graph, nodes)
        assert v.sum() == pytest.approx(1.0)
        assert v[graph.node_id("a")] == pytest.approx(0.5)
        assert v[graph.node_id("c")] == 0.0

    def test_personalization_duplicates_accumulate(self, graph):
        node = graph.node_id("a")
        v = personalization_vector(graph, [node, node])
        assert v[node] == pytest.approx(1.0)

    def test_personalization_requires_nodes(self, graph):
        with pytest.raises(ValueError):
            personalization_vector(graph, [])
        with pytest.raises(ValueError):
            personalization_vector(graph, [10_000])


class TestExplicitStatistics:
    def test_matching_statistics_accepted(self, graph):
        from repro.graph.statistics import GraphStatistics

        a = weighted_adjacency(graph, statistics=GraphStatistics(graph))
        b = weighted_adjacency(graph)
        assert (a != b).nnz == 0

    def test_mismatched_statistics_rejected(self, graph):
        from repro.graph.statistics import GraphStatistics

        other = GraphBuilder().fact("x", "unrelated", "y").build()
        with pytest.raises(KeyError):
            weighted_adjacency(graph, statistics=GraphStatistics(other))

    def test_mismatched_statistics_rejected_by_python_backend(self, graph):
        from repro.graph.statistics import GraphStatistics
        from repro.walk.pagerank import power_iteration_python

        other = GraphBuilder().fact("x", "unrelated", "y").build()
        v = personalization_vector(graph, [0])
        with pytest.raises(KeyError):
            power_iteration_python(graph, v, statistics=GraphStatistics(other))
