"""Earth Mover's Distance.

The paper: "the Earth Mover's Distance (EMD) requires the definition of
distance between values, which is not defined for Inst". Accordingly:

* for **cardinality** distributions, whose support 0,1,2,... is naturally
  ordered, :func:`earth_movers_distance_1d` uses the classic CDF form of
  1-D EMD with ground distance ``|i - j|``;
* for **instance** distributions, which have no value ordering, the only
  metric ground distance available is the discrete metric (0 if equal,
  1 otherwise), under which EMD degenerates to the **total variation
  distance** — :func:`total_variation_distance`. The EMD baseline of the
  metrics-comparison experiment uses this pair.
"""

from __future__ import annotations

import numpy as np

from repro.errors import StatisticsError
from repro.util.validation import normalize_counts


def _prepare(p, q) -> tuple[np.ndarray, np.ndarray]:
    p_arr = np.asarray(p, dtype=np.float64)
    q_arr = np.asarray(q, dtype=np.float64)
    if p_arr.shape != q_arr.shape or p_arr.ndim != 1:
        raise StatisticsError("p and q must be 1-D vectors of equal length")
    if p_arr.size == 0:
        raise StatisticsError("empty support")
    return normalize_counts(p_arr, "p"), normalize_counts(q_arr, "q")


def earth_movers_distance_1d(
    p: "np.ndarray | list[float]",
    q: "np.ndarray | list[float]",
    *,
    positions: "np.ndarray | list[float] | None" = None,
) -> float:
    """1-D EMD between distributions over ordered support.

    With unit-spaced positions this is ``sum |CDF_p - CDF_q|``; explicit
    ``positions`` weight each CDF gap by the gap width.
    """
    p_arr, q_arr = _prepare(p, q)
    cdf_gap = np.cumsum(p_arr - q_arr)
    if positions is None:
        return float(np.abs(cdf_gap[:-1]).sum()) if p_arr.size > 1 else 0.0
    pos = np.asarray(positions, dtype=np.float64)
    if pos.shape != p_arr.shape:
        raise StatisticsError("positions must match the support size")
    if np.any(np.diff(pos) < 0):
        raise StatisticsError("positions must be non-decreasing")
    widths = np.diff(pos)
    return float(np.abs(cdf_gap[:-1]) @ widths)


def total_variation_distance(
    p: "np.ndarray | list[float]",
    q: "np.ndarray | list[float]",
) -> float:
    """``0.5 * sum |p - q|`` — EMD under the discrete (0/1) ground distance."""
    p_arr, q_arr = _prepare(p, q)
    return float(0.5 * np.abs(p_arr - q_arr).sum())
