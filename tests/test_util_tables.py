"""Unit tests for the table renderer."""

import pytest

from repro.util.tables import Table, format_table


class TestTable:
    def test_add_row_validates_width(self):
        table = Table(["a", "b"])
        with pytest.raises(ValueError):
            table.add_row([1])

    def test_render_ascii(self):
        table = Table(["algo", "f1"])
        table.add_row(["ContextRW", 0.5])
        out = table.render()
        assert "algo" in out and "ContextRW" in out and "0.5000" in out
        assert "|" in out

    def test_render_markdown(self):
        table = Table(["a"])
        table.add_row([1])
        out = table.render(markdown=True)
        assert out.splitlines()[0].startswith("| a")
        assert out.splitlines()[1].startswith("|-")

    def test_title_rendered(self):
        table = Table(["a"], title="My Table")
        table.add_row([1])
        assert table.render().startswith("My Table")

    def test_float_format(self):
        table = Table(["x"], float_format=".1f")
        table.add_row([0.25])
        assert "0.2" in table.render() or "0.3" in table.render()

    def test_bool_rendering(self):
        table = Table(["ok"])
        table.add_row([True])
        table.add_row([False])
        rendered = table.render()
        assert "yes" in rendered and "no" in rendered

    def test_sorted_by(self):
        table = Table(["k", "v"])
        table.extend([[2, "b"], [1, "a"], [3, "c"]])
        ordered = table.sorted_by("k")
        assert ordered.column("k") == [1, 2, 3]
        reverse = table.sorted_by("k", reverse=True)
        assert reverse.column("k") == [3, 2, 1]

    def test_column_access(self):
        table = Table(["k", "v"])
        table.extend([[1, "a"], [2, "b"]])
        assert table.column("v") == ["a", "b"]
        with pytest.raises(ValueError):
            table.column("nope")

    def test_to_csv_escapes(self):
        table = Table(["name"])
        table.add_row(["comma, inside"])
        csv = table.to_csv()
        assert '"comma, inside"' in csv

    def test_len(self):
        table = Table(["a"])
        assert len(table) == 0
        table.add_row([1])
        assert len(table) == 1

    def test_empty_render(self):
        table = Table(["alpha", "b"])
        out = table.render()
        assert "alpha" in out


class TestFormatTable:
    def test_one_shot(self):
        out = format_table(["x"], [[1], [2]], title="T")
        assert out.startswith("T")
        assert "2" in out
