"""Weighted adjacency and transition matrices (Equations 1 and 2).

Equation 1 defines the weighted adjacency ``A`` as::

    A_ij = 1 - |E_l| / |E|    if (i, j) in E with label l, else 0

The matrix is |V| x |V|; for parallel edges with different labels between
the same pair we *sum* the weights (documented design choice — the paper
leaves multi-edges unspecified; summing preserves "more relations => more
flow" and keeps A non-negative).

Equation 2 normalizes columns of the transpose::

    A~_ij = A_ji / sum_k A_jk

so ``A~`` is column-stochastic over nodes with out-edges. Columns of
dangling nodes (no out-edges) stay zero; the PageRank iteration compensates
via the (1 - c) teleport term and renormalization.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np
from scipy import sparse

from repro.graph.model import KnowledgeGraph
from repro.graph.statistics import GraphStatistics

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.graph.compiled import CompiledGraph


def weighted_adjacency(
    graph: KnowledgeGraph, *, statistics: GraphStatistics | None = None
) -> sparse.csr_matrix:
    """Build Equation 1's weighted adjacency matrix ``A`` (CSR, float64).

    The COO triple comes straight from the compiled columnar snapshot
    (:mod:`repro.graph.compiled`) — flat ``(sources, targets, label_ids)``
    arrays and a per-label-id weight lookup — instead of materializing an
    :class:`~repro.graph.model.Edge` dataclass per edge. With the default
    snapshot weights this delegates to
    :func:`weighted_adjacency_from_snapshot` (one construction for both
    the live-graph and snapshot-only paths).
    """
    compiled = graph._compiled()  # noqa: SLF001 - internal fast path
    if statistics is None:
        return weighted_adjacency_from_snapshot(compiled)
    weights = _label_weight_array(graph, statistics)
    matrix = sparse.coo_matrix(
        (weights[compiled.label_ids], (compiled.sources, compiled.targets)),
        shape=(compiled.node_count, compiled.node_count),
        dtype=np.float64,
    )
    # Duplicate (i, j) entries from parallel edges are summed by conversion.
    return matrix.tocsr()


def weighted_adjacency_from_snapshot(compiled: "CompiledGraph") -> sparse.csr_matrix:
    """Equation 1's ``A`` built from a snapshot alone — no graph object.

    The graph-free twin of :func:`weighted_adjacency` (same COO-from-arrays
    construction, always the snapshot's precomputed Equation-1 weights),
    for consumers that only hold a :class:`~repro.graph.compiled.CompiledGraph`
    — the disk ingester bakes the frozen transition matrix into a snapshot
    file before any graph exists.
    """
    n = compiled.node_count
    matrix = sparse.coo_matrix(
        (compiled.label_weights[compiled.label_ids], (compiled.sources, compiled.targets)),
        shape=(n, n),
        dtype=np.float64,
    )
    return matrix.tocsr()


def transition_from_snapshot(compiled: "CompiledGraph") -> sparse.csr_matrix:
    """Equation 2's column-stochastic ``A~`` built from a snapshot alone.

    :func:`transition_matrix` over :func:`weighted_adjacency_from_snapshot`
    — the matrix the query service freezes per graph version and the disk
    store persists so a cold-started server never rebuilds it.
    """
    return _normalize_transition(weighted_adjacency_from_snapshot(compiled))


def _label_weight_array(
    graph: KnowledgeGraph, statistics: GraphStatistics | None
) -> np.ndarray:
    """Per-label-id weight lookup for the graph's live labels.

    Without ``statistics`` this is the compiled snapshot's precomputed
    Equation-1 weights; with it, the caller-supplied weights are mapped
    onto label ids. A live graph label missing from ``statistics`` raises
    ``KeyError``, matching the per-edge dict lookups this replaced.
    """
    compiled = graph._compiled()  # noqa: SLF001 - internal fast path
    if statistics is None:
        return compiled.label_weights
    weights_by_label = statistics.label_weights()
    table = graph._label_table()  # noqa: SLF001 - internal fast path
    weights = np.zeros(compiled.label_count, dtype=np.float64)
    for label in graph.edge_labels:
        weights[table.lookup(label)] = weights_by_label[label]
    return weights


def transition_matrix(
    graph: KnowledgeGraph,
    *,
    adjacency: sparse.csr_matrix | None = None,
) -> sparse.csr_matrix:
    """Build Equation 2's column-stochastic matrix ``A~``.

    ``A~[i, j] = A[j, i] / sum_k A[j, k]`` — the probability of stepping
    from node ``j`` to node ``i``.
    """
    a = adjacency if adjacency is not None else weighted_adjacency(graph)
    return _normalize_transition(a)


def _normalize_transition(a: sparse.csr_matrix) -> sparse.csr_matrix:
    """Column-normalize ``a`` transposed (the shared Equation-2 step)."""
    out_weight = np.asarray(a.sum(axis=1)).ravel()  # row sums of A = out-weights
    with np.errstate(divide="ignore"):
        inverse = np.where(out_weight > 0, 1.0 / out_weight, 0.0)
    # Scale row j of A by 1/out_weight[j], then transpose: columns sum to 1.
    scaled = sparse.diags(inverse) @ a
    return scaled.transpose().tocsr()


def dangling_nodes(graph: KnowledgeGraph) -> np.ndarray:
    """Boolean mask of nodes without out-edges (zero columns of ``A~``)."""
    compiled = graph._compiled()  # noqa: SLF001 - internal fast path
    return compiled.out_degrees() == 0


def personalization_vector(
    graph: KnowledgeGraph, nodes: "list[int] | tuple[int, ...]"
) -> np.ndarray:
    """Uniform personalization vector ``v`` over ``nodes`` (Equation 2).

    The paper sets ``v_n = 1`` for each query node individually; for a
    multi-node restart we normalize to a distribution.
    """
    if not nodes:
        raise ValueError("personalization needs at least one node")
    v = np.zeros(graph.node_count, dtype=np.float64)
    for node in nodes:
        if not 0 <= node < graph.node_count:
            raise ValueError(f"node id out of range: {node}")
        v[node] += 1.0
    return v / v.sum()
